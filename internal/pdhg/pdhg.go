// Package pdhg implements a distributed first-order LP solver: restarted
// primal–dual hybrid gradient (PDHG, the Chambolle–Pock scheme that PDLP
// and the "From GPUs to RRAMs" line of work scale to huge LPs) with both
// per-iteration mat-vecs executed on a grid of memristor crossbar tiles.
//
// Unlike the interior-point engines, PDHG needs no linear-system solve —
// only A·x and Aᵀ·y — so the constraint matrix can be cut into
// crossbar-sized blocks with no coupling beyond vector segments. The matrix
// is tiled into canonical t×t blocks (four physical crossbars per block:
// the differential A⁺/A⁻ pair and its transpose pair), the blocks are
// swept by a worker grid, and the primal/dual vector segments are
// scattered/gathered over the modeled NoC between half-iterations. That
// scales past the single-fabric ceiling: a problem too large for any one
// crossbar solves on many small tiles.
//
// Determinism contract (the PR 4 pool-width contract, extended to tiles):
// the canonical tiling depends only on the tile size, every tile's noise
// epoch is derived from (block index, slot) before programming, reductions
// run in canonical block order on the controller, and NoC accounting is
// keyed to canonical block coordinates — so results, traces, and modeled
// energy are bit-identical across worker-grid shapes 1×1, 2×2, 4×4.
//
// Termination is by relative KKT residuals. The analog iterates are
// monitored through the recurrence A·x⁺ = (v + A·x)/2 (no third analog
// pass), and a candidate is only accepted after the digital cross-check —
// exact A, exact transpose — confirms primal feasibility, dual feasibility,
// and duality gap at the configured tolerances. The 8-bit ADC floor makes
// ~5e-3 the practical relative tolerance, which is what DefaultTolerances
// uses.
package pdhg

import (
	"context"
	"fmt"
	"math"
	"sync"

	"github.com/memlp/memlp/internal/crossbar"
	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/lp"
	"github.com/memlp/memlp/internal/noc"
	"github.com/memlp/memlp/internal/perf"
	"github.com/memlp/memlp/internal/trace"
)

const (
	// etaStep is the step-size safety factor: τ = σ = η/‖A‖₂ keeps
	// τσ‖A‖² = η² < 1 with margin for the analog operator's variation.
	etaStep = 0.9
	// spectralSteps is the fixed power-iteration count estimating ‖A‖₂
	// (deterministic: all-ones start, no randomness).
	spectralSteps = 40
	// confirmCooldown spaces out digital KKT cross-checks once the
	// monitored residuals first pass, so a hovering iterate cannot trigger
	// an exact O(mn) check every iteration.
	confirmCooldown = 10
	// traceStride decimates per-iteration trace records: PDHG runs orders
	// of magnitude more (much cheaper) iterations than the Newton engines,
	// so recording every 25th keeps golden traces reviewable. Restart
	// events and the done record always emit.
	traceStride = 25

	defaultRestartEvery = 40
	defaultRefreshEvery = 500
)

// DefaultTolerances returns the PDHG stopping parameters: the relative KKT
// tolerances sit at the 8-bit ADC floor (5e-3) rather than the
// interior-point 1e-6, and the iteration budget reflects a first-order
// method's rate.
func DefaultTolerances() lp.Tolerances {
	t := lp.DefaultTolerances()
	t.PrimalFeasTol = 5e-3
	t.DualFeasTol = 5e-3
	t.GapTol = 5e-3
	t.MaxIterations = 20000
	return t
}

// Solver runs restarted PDHG on a tiled crossbar fabric. Safe for
// concurrent use: calls serialize on the handle.
type Solver struct {
	mu sync.Mutex

	ncfg         noc.Config
	xcfg         crossbar.Config
	grid         int
	tol          lp.Tolerances
	restartEvery int
	refreshEvery int
	ring         *trace.Ring
	energy       func(crossbar.Counters) float64
}

// Option configures a Solver.
type Option func(*Solver)

// WithNoC sets the interconnect configuration; cfg.TileSize is the
// canonical block size (and each tile crossbar's dimension).
func WithNoC(cfg noc.Config) Option {
	return func(s *Solver) { s.ncfg = cfg }
}

// WithCrossbar sets the per-tile crossbar configuration (Size is overridden
// with the tile size).
func WithCrossbar(cfg crossbar.Config) Option {
	return func(s *Solver) { s.xcfg = cfg }
}

// WithGrid sets the worker-grid side g: g² goroutines sweep the canonical
// blocks each half-iteration. Results are bit-identical for every g.
func WithGrid(g int) Option {
	return func(s *Solver) { s.grid = g }
}

// WithTolerances overrides DefaultTolerances (zero fields fall back to the
// interior-point defaults of lp.DefaultTolerances, not the PDHG ones).
func WithTolerances(t lp.Tolerances) Option {
	return func(s *Solver) { s.tol = t }
}

// WithTrace enables per-iteration trace recording into a bounded ring of
// the given capacity (<= 0 means trace.DefaultCapacity).
func WithTrace(capacity int) Option {
	return func(s *Solver) { s.ring = trace.NewRing(capacity) }
}

// WithEnergyModel prices aggregate crossbar counters in joules; NoC hop
// energy is added on top from the router's config.
func WithEnergyModel(f func(crossbar.Counters) float64) Option {
	return func(s *Solver) { s.energy = f }
}

// WithRestartInterval sets how many iterations pass between adaptive
// restart checks.
func WithRestartInterval(n int) Option {
	return func(s *Solver) { s.restartEvery = n }
}

// WithRefreshInterval sets how many iterations pass between full tile
// conductance refreshes (0 disables refreshing).
func WithRefreshInterval(n int) Option {
	return func(s *Solver) { s.refreshEvery = n }
}

// New returns a configured Solver.
func New(opts ...Option) (*Solver, error) {
	s := &Solver{
		grid:         1,
		tol:          DefaultTolerances(),
		restartEvery: defaultRestartEvery,
		refreshEvery: defaultRefreshEvery,
	}
	for _, fn := range opts {
		fn(s)
	}
	s.tol = s.tol.WithDefaults()
	if err := s.tol.Validate(); err != nil {
		return nil, err
	}
	if s.grid < 1 {
		return nil, fmt.Errorf("pdhg: %w: worker grid %d", lp.ErrInvalid, s.grid)
	}
	if s.restartEvery < 1 {
		return nil, fmt.Errorf("pdhg: %w: restart interval %d", lp.ErrInvalid, s.restartEvery)
	}
	if s.refreshEvery < 0 {
		return nil, fmt.Errorf("pdhg: %w: refresh interval %d", lp.ErrInvalid, s.refreshEvery)
	}
	return s, nil
}

// Result is the PDHG solve outcome. Residuals and the objective are the
// exact digital values of the returned iterate, not the analog monitors.
type Result struct {
	Status     lp.Status
	X, Y       linalg.Vector
	Objective  float64
	Iterations int

	// Restarts counts adaptive restarts taken; TilesRefreshed counts
	// canonical blocks re-programmed by the periodic conductance refresh.
	Restarts       int
	TilesRefreshed int64

	PrimalInfeasibility float64
	DualInfeasibility   float64
	DualityGap          float64

	// Counters aggregates all tiles' crossbar activity; NoC is the
	// scatter/gather traffic; EnergyJoules prices both.
	Counters     crossbar.Counters
	NoC          noc.Stats
	EnergyJoules float64
	MatrixSize   int

	Trace []trace.Record
}

// kkt bundles one set of relative KKT measures.
type kkt struct {
	pinf, dinf, gap, obj float64
}

func (k kkt) within(tol lp.Tolerances) bool {
	return k.pinf <= tol.PrimalFeasTol && k.dinf <= tol.DualFeasTol && k.gap <= tol.GapTol
}

// Solve runs PDHG without cancellation.
func (s *Solver) Solve(p *lp.Problem) (*Result, error) {
	return s.SolveContext(context.Background(), p)
}

// SolveContext runs restarted PDHG on p, honoring ctx inside the iteration
// loop: a canceled context returns the partial result with
// lp.StatusCanceled and the wrapped context error.
func (s *Solver) SolveContext(ctx context.Context, p *lp.Problem) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p == nil {
		return nil, fmt.Errorf("pdhg: %w: nil problem", lp.ErrInvalid)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.IsConic() {
		return nil, fmt.Errorf("pdhg: %w", lp.ErrConicUnsupported)
	}
	if s.ring != nil {
		s.ring.Reset()
	}

	fab, err := newFabric(p.A, s.ncfg, s.xcfg)
	if err != nil {
		return nil, err
	}
	workers := s.grid * s.grid
	m, n := p.NumConstraints(), p.NumVariables()

	// Iterate state. x₀ = y₀ = 0, so A·x₀ = 0 exactly and the recurrence
	// A·x⁺ = (v + A·x)/2 stays anchored to analog reality from the start.
	x := linalg.NewVector(n)
	xbar := linalg.NewVector(n)
	y := linalg.NewVector(m)
	z := linalg.NewVector(n) // analog Aᵀ·y, start of each iteration
	v := linalg.NewVector(m) // analog A·x̄
	ax := linalg.NewVector(m)
	xsum := linalg.NewVector(n)
	ysum := linalg.NewVector(m)
	xavg := linalg.NewVector(n)
	yavg := linalg.NewVector(m)
	axAvg := linalg.NewVector(m)
	zAvg := linalg.NewVector(n)
	axd := linalg.NewVector(m) // digital cross-check scratch
	zd := linalg.NewVector(n)

	bInf := 1 + p.B.NormInf()
	cInf := 1 + p.C.NormInf()

	// Deterministic digital power iteration for ‖A‖₂; the step sizes are
	// computed once per solve (digital preprocessing, like the interior
	// engines' scaling pass).
	norm := spectralNorm(p.A, zd, axd)
	if !(norm > 0) {
		norm = 1
	}
	tau := etaStep / norm
	sigma := tau

	emit := func(event string, iteration int, k kkt, status string) {
		if s.ring == nil {
			return
		}
		ctr := fab.counters()
		s.ring.Emit(trace.Record{
			Attempt:             1,
			Iteration:           iteration,
			Event:               event,
			Status:              status,
			DualityGap:          k.gap,
			PrimalInfeasibility: k.pinf,
			DualInfeasibility:   k.dinf,
			Theta:               tau,
			Objective:           k.obj,
			WriteRetries:        ctr.WriteRetries,
			CellsWritten:        ctr.CellWrites,
			CellsSkipped:        ctr.CellSkips,
			TilesRefreshed:      fab.tilesRefreshed,
			EnergyJoules:        s.energyFor(ctr, fab),
		})
	}

	status := lp.StatusIterationLimit
	var ctxErr error
	var final kkt
	confirmed := false
	restarts := 0
	sinceRestart := 0
	lastConfirm := -confirmCooldown
	done := 0

	for iter := 1; iter <= s.tol.MaxIterations; iter++ {
		if err := ctx.Err(); err != nil {
			status = lp.StatusCanceled
			ctxErr = fmt.Errorf("pdhg: solve canceled at iteration %d: %w", iter, err)
			break
		}
		// Adjoint half-iteration: z ← Aᵀ·y on the transpose tiles.
		if err := fab.matVecT(z, y, workers); err != nil {
			return nil, err
		}
		primalStep(x, xbar, z, p.C, tau)
		// Forward half-iteration: v ← A·x̄ on the forward tiles.
		if err := fab.matVec(v, xbar, workers); err != nil {
			return nil, err
		}
		dualStep(y, v, p.B, sigma)
		axUpdate(ax, v)
		done = iter

		if !x.AllFinite() || !y.AllFinite() {
			status = lp.StatusNumericalFailure
			break
		}
		if x.NormInf() > s.tol.BlowupLimit {
			status = lp.StatusUnbounded
			break
		}
		if y.NormInf() > s.tol.BlowupLimit {
			status = lp.StatusInfeasible
			break
		}
		accumulate(xsum, x)
		accumulate(ysum, y)
		sinceRestart++

		// Monitored (analog) residuals: ax tracks A·x through the
		// recurrence; z lags one half-iteration, which is fine for gating.
		obj := dot(p.C, x)
		mon := kkt{
			pinf: maxPosDiff(ax, p.B) / bInf,
			dinf: maxPosDiff(p.C, z) / cInf,
			gap:  relGap(obj, dot(p.B, y)),
			obj:  obj,
		}

		if iter == 1 || iter%traceStride == 0 {
			emit(trace.EventIteration, iter, mon, "")
		}

		// Candidate termination: the monitors gate the exact digital
		// cross-check; only the cross-check declares optimality.
		if mon.within(s.tol) && iter-lastConfirm >= confirmCooldown {
			lastConfirm = iter
			k := digitalKKT(p, x, y, axd, zd, bInf, cInf)
			if k.within(s.tol) {
				status = lp.StatusOptimal
				final = k
				confirmed = true
				break
			}
		}

		// Adaptive restart: every restartEvery iterations, jump to the
		// ergodic average when its (analog) KKT score beats the current
		// iterate's; either way the averaging window resets.
		if sinceRestart >= s.restartEvery {
			inv := 1 / float64(sinceRestart)
			scaleInto(xavg, xsum, inv)
			scaleInto(yavg, ysum, inv)
			if err := fab.matVec(axAvg, xavg, workers); err != nil {
				return nil, err
			}
			if err := fab.matVecT(zAvg, yavg, workers); err != nil {
				return nil, err
			}
			objA := dot(p.C, xavg)
			avg := kkt{
				pinf: maxPosDiff(axAvg, p.B) / bInf,
				dinf: maxPosDiff(p.C, zAvg) / cInf,
				gap:  relGap(objA, dot(p.B, yavg)),
				obj:  objA,
			}
			if max(avg.pinf, avg.dinf, avg.gap) < max(mon.pinf, mon.dinf, mon.gap) {
				copy(x, xavg)
				copy(y, yavg)
				copy(ax, axAvg)
				restarts++
				emit(trace.EventRestart, iter, avg, "")
			}
			xsum.Fill(0)
			ysum.Fill(0)
			sinceRestart = 0
		}

		// Periodic conductance refresh: numerically a no-op (same epochs,
		// same draws), honestly costed in writes and energy.
		if s.refreshEvery > 0 && iter%s.refreshEvery == 0 {
			if err := fab.refresh(); err != nil {
				return nil, err
			}
		}
	}

	if !confirmed {
		final = digitalKKT(p, x, y, axd, zd, bInf, cInf)
		if status == lp.StatusIterationLimit && final.within(s.tol) {
			status = lp.StatusOptimal
		}
	}

	ctr := fab.counters()
	res := &Result{
		Status:              status,
		X:                   x,
		Y:                   y,
		Objective:           final.obj,
		Iterations:          done,
		Restarts:            restarts,
		TilesRefreshed:      fab.tilesRefreshed,
		PrimalInfeasibility: final.pinf,
		DualInfeasibility:   final.dinf,
		DualityGap:          final.gap,
		Counters:            ctr,
		NoC:                 fab.router.Stats(),
		EnergyJoules:        s.energyFor(ctr, fab),
		MatrixSize:          max(m, n),
	}
	emit(trace.EventDone, done, final, status.String())
	if s.ring != nil {
		res.Trace = s.ring.Snapshot()
	}
	return res, ctxErr
}

// Tiles reports how many canonical blocks a problem of the given shape
// occupies under the solver's tile size (before any solve).
func (s *Solver) Tiles(m, n int) (int, error) {
	probe, err := noc.NewRouter(s.ncfg, 1, 1)
	if err != nil {
		return 0, err
	}
	t := probe.Config().TileSize
	return ((m + t - 1) / t) * ((n + t - 1) / t), nil
}

// energyFor prices the aggregate crossbar counters plus the NoC traffic.
func (s *Solver) energyFor(ctr crossbar.Counters, fab *fabric) float64 {
	e := perf.NoCCost(fab.router.Stats(), fab.router.Config()).Energy
	if s.energy != nil {
		e += s.energy(ctr)
	}
	return e
}

// digitalKKT evaluates the exact relative KKT measures of (x, y) with the
// true matrix A — the cross-check that decides optimality, independent of
// every analog non-ideality.
func digitalKKT(p *lp.Problem, x, y, axd, zd linalg.Vector, bInf, cInf float64) kkt {
	// Dimensions are fixed by construction; the Into errors cannot fire.
	_ = p.A.MatVecInto(axd, x)
	_ = p.A.MatVecTransposeInto(zd, y)
	obj := dot(p.C, x)
	return kkt{
		pinf: maxPosDiff(axd, p.B) / bInf,
		dinf: maxPosDiff(p.C, zd) / cInf,
		gap:  relGap(obj, dot(p.B, y)),
		obj:  obj,
	}
}

// relGap is the scaled duality-gap measure |cᵀx − bᵀy|/(1+|cᵀx|+|bᵀy|).
func relGap(obj, bty float64) float64 {
	return math.Abs(obj-bty) / (1 + math.Abs(obj) + math.Abs(bty))
}

// spectralNorm estimates ‖A‖₂ by a fixed number of deterministic power
// iterations on AᵀA (all-ones start). u must have length n, w length m.
func spectralNorm(a *linalg.Matrix, u, w linalg.Vector) float64 {
	u.Fill(1)
	lambda := 0.0
	for q := 0; q < spectralSteps; q++ {
		_ = a.MatVecInto(w, u)
		_ = a.MatVecTransposeInto(u, w)
		lambda = u.Norm2()
		if !(lambda > 0) {
			return 0
		}
		scaleInto(u, u, 1/lambda)
	}
	return math.Sqrt(lambda)
}
