package pdhg

import (
	"fmt"
	"sync"

	"github.com/memlp/memlp/internal/crossbar"
	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/noc"
)

// Each canonical block owns four physical crossbars: the differential pair
// holding the block's positive and negative parts (crossbars store only
// non-negative conductances, so A = A⁺ − A⁻ per block), and the pair
// programmed with the transposed parts for the adjoint mat-vec (the array
// has no transpose read mode).
const (
	slotPos = iota
	slotNeg
	slotPosT
	slotNegT
	slots
)

// tileEpoch derives the noise epoch of one physical crossbar from its
// canonical block index and slot. Applied via SetNoiseEpoch BEFORE the tile
// is programmed, it makes every stochastic draw — static variation, cycle
// noise, fault write noise — a pure function of (base seed, block index,
// slot), independent of which worker goroutine later drives the tile and of
// any solve history. This mirrors the fabric pool's (seed, problem index)
// contract from DESIGN.md D12 and is what pins PDHG results bit-identical
// across worker-grid shapes.
func tileEpoch(blockIndex, slot int) int64 {
	return int64(blockIndex*slots + slot)
}

// block is one canonical tile of the problem matrix: the submatrix
// A[br·t:…, bc·t:…] and the four crossbars realizing ±A_block and ±A_blockᵀ.
// Per-pass partial outputs land in block-owned buffers, so concurrent
// workers never share writable state (the axOut/atyOut slots are the
// halo-exchange staging area the controller reduces from).
type block struct {
	index      int
	br, bc     int
	rows, cols int

	pos, neg   *crossbar.Crossbar
	posT, negT *crossbar.Crossbar

	// Retained programming targets, for the periodic conductance refresh.
	aPos, aNeg   *linalg.Matrix
	aPosT, aNegT *linalg.Matrix

	axOut  linalg.Vector // partial A·x segment (rows), one pass
	atyOut linalg.Vector // partial Aᵀ·y segment (cols), one pass
	err    error         // first crossbar error of the current pass
}

// fabric is the canonical tiling of one problem matrix across the NoC. The
// tiling is fixed by the tile size alone — the worker grid only decides how
// many goroutines sweep the blocks, never how the matrix is cut — so every
// floating-point result, stochastic draw, and interconnect count is
// independent of the grid shape.
type fabric struct {
	m, n   int
	t      int
	bRows  int
	bCols  int
	blocks []*block // row-major canonical order
	router *noc.Router

	tilesRefreshed int64
}

// newFabric tiles a into t×t canonical blocks and programs the per-block
// crossbar quads in canonical order on the calling goroutine.
func newFabric(a *linalg.Matrix, ncfg noc.Config, xcfg crossbar.Config) (*fabric, error) {
	m, n := a.Rows(), a.Cols()
	// Probe router: resolves the config defaults (tile size, hop costs) so
	// the block grid can be derived before the real router is sized.
	probe, err := noc.NewRouter(ncfg, 1, 1)
	if err != nil {
		return nil, err
	}
	ncfg = probe.Config()
	t := ncfg.TileSize
	router, err := noc.NewRouter(ncfg, (m+t-1)/t, (n+t-1)/t)
	if err != nil {
		return nil, err
	}
	f := &fabric{
		m:      m,
		n:      n,
		t:      t,
		bRows:  (m + t - 1) / t,
		bCols:  (n + t - 1) / t,
		router: router,
	}
	f.blocks = make([]*block, 0, f.bRows*f.bCols)
	for br := 0; br < f.bRows; br++ {
		for bc := 0; bc < f.bCols; bc++ {
			b, err := f.newBlock(a, br, bc, xcfg)
			if err != nil {
				return nil, err
			}
			f.blocks = append(f.blocks, b)
		}
	}
	return f, nil
}

func (f *fabric) newBlock(a *linalg.Matrix, br, bc int, xcfg crossbar.Config) (*block, error) {
	rows := minInt(f.t, f.m-br*f.t)
	cols := minInt(f.t, f.n-bc*f.t)
	b := &block{
		index:  br*f.bCols + bc,
		br:     br,
		bc:     bc,
		rows:   rows,
		cols:   cols,
		axOut:  linalg.NewVector(rows),
		atyOut: linalg.NewVector(cols),
	}
	b.aPos = linalg.NewMatrix(rows, cols)
	b.aNeg = linalg.NewMatrix(rows, cols)
	b.aPosT = linalg.NewMatrix(cols, rows)
	b.aNegT = linalg.NewMatrix(cols, rows)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			v := a.At(br*f.t+i, bc*f.t+j)
			if v > 0 {
				b.aPos.Set(i, j, v)
				b.aPosT.Set(j, i, v)
			} else if v < 0 {
				b.aNeg.Set(i, j, -v)
				b.aNegT.Set(j, i, -v)
			}
		}
	}
	var err error
	if b.pos, err = f.buildTile(b.index, slotPos, xcfg, b.aPos); err != nil {
		return nil, err
	}
	if b.neg, err = f.buildTile(b.index, slotNeg, xcfg, b.aNeg); err != nil {
		return nil, err
	}
	if b.posT, err = f.buildTile(b.index, slotPosT, xcfg, b.aPosT); err != nil {
		return nil, err
	}
	if b.negT, err = f.buildTile(b.index, slotNegT, xcfg, b.aNegT); err != nil {
		return nil, err
	}
	return b, nil
}

// buildTile constructs and programs one physical crossbar. The variation
// model is cloned per tile (independent streams, one base seed) and the
// fault model's seed is offset by the tile epoch, so defect placement and
// every noise draw are a pure function of (seed, block index, slot).
func (f *fabric) buildTile(blockIndex, slot int, xcfg crossbar.Config, target *linalg.Matrix) (*crossbar.Crossbar, error) {
	epoch := tileEpoch(blockIndex, slot)
	cfg := xcfg
	cfg.Size = f.t
	if cfg.Variation != nil {
		cfg.Variation = cfg.Variation.Clone()
	}
	if cfg.Faults != nil {
		fm := *cfg.Faults
		fm.Seed += epoch + 1
		cfg.Faults = &fm
	}
	xb, err := crossbar.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("pdhg: building tile (block %d, slot %d): %w", blockIndex, slot, err)
	}
	xb.SetNoiseEpoch(epoch)
	if err := xb.Program(target); err != nil {
		return nil, fmt.Errorf("pdhg: programming tile (block %d, slot %d): %w", blockIndex, slot, err)
	}
	return xb, nil
}

// matVec computes out ← A·x on the tiled fabric: the controller scatters
// the input segments across the NoC, the worker grid runs every block's
// differential analog multiply into block-owned staging buffers, and after
// the join barrier the controller gathers the partials and reduces them in
// canonical block order. The fixed reduction order keeps the floating-point
// sum — and therefore the whole trajectory — identical for every worker
// count.
func (f *fabric) matVec(out, x linalg.Vector, workers int) error {
	for _, b := range f.blocks {
		f.router.Scatter(b.br, b.bc, b.cols)
	}
	f.sweep(workers, func(b *block) error {
		seg := x[b.bc*f.t : b.bc*f.t+b.cols]
		return b.differentialMatVec(b.pos, b.neg, b.axOut, seg)
	})
	for _, b := range f.blocks {
		f.router.Gather(b.br, b.bc, b.rows)
		if b.err != nil {
			return b.err
		}
	}
	out.Fill(0)
	for _, b := range f.blocks {
		reduceInto(out[b.br*f.t:b.br*f.t+b.rows], b.axOut)
	}
	return nil
}

// matVecT computes out ← Aᵀ·y, the adjoint half-iteration, on the
// transposed crossbar pair of each block; same halo-exchange structure as
// matVec with the roles of rows and columns swapped.
func (f *fabric) matVecT(out, y linalg.Vector, workers int) error {
	for _, b := range f.blocks {
		f.router.Scatter(b.br, b.bc, b.rows)
	}
	f.sweep(workers, func(b *block) error {
		seg := y[b.br*f.t : b.br*f.t+b.rows]
		return b.differentialMatVec(b.posT, b.negT, b.atyOut, seg)
	})
	for _, b := range f.blocks {
		f.router.Gather(b.br, b.bc, b.cols)
		if b.err != nil {
			return b.err
		}
	}
	out.Fill(0)
	for _, b := range f.blocks {
		reduceInto(out[b.bc*f.t:b.bc*f.t+b.cols], b.atyOut)
	}
	return nil
}

// sweep runs fn over every block on the worker grid: worker w owns blocks
// w, w+workers, w+2·workers, … so ownership is disjoint and each crossbar
// is driven by exactly one goroutine per pass. The WaitGroup join is the
// barrier between half-iterations.
func (f *fabric) sweep(workers int, fn func(*block) error) {
	if workers > len(f.blocks) {
		workers = len(f.blocks)
	}
	if workers <= 1 {
		for _, b := range f.blocks {
			b.err = fn(b)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := w; k < len(f.blocks); k += workers {
				b := f.blocks[k]
				b.err = fn(b)
			}
		}(w)
	}
	wg.Wait()
}

// differentialMatVec runs the block's differential analog multiply
// out ← pos·seg − neg·seg. The crossbar's MatVec result is scratch-owned,
// so the positive partial is copied into the block's staging buffer before
// the negative array runs.
func (b *block) differentialMatVec(pos, neg *crossbar.Crossbar, out, seg linalg.Vector) error {
	pv, err := pos.MatVec(seg)
	if err != nil {
		return fmt.Errorf("pdhg: block %d mat-vec: %w", b.index, err)
	}
	copy(out, pv)
	nv, err := neg.MatVec(seg)
	if err != nil {
		return fmt.Errorf("pdhg: block %d mat-vec: %w", b.index, err)
	}
	subInto(out, nv)
	return nil
}

// refresh re-programs every tile against conductance drift: each crossbar
// is rebased to its own (unchanged) epoch and rewritten with its original
// target, so the realized conductances — and every noise draw — come out
// identical to the original programming. Numerically a no-op, but the write
// traffic and energy are honestly accounted, which is the point: the trace
// shows what a real deployment pays to keep tiles fresh.
func (f *fabric) refresh() error {
	for _, b := range f.blocks {
		quads := [slots]struct {
			xb  *crossbar.Crossbar
			tgt *linalg.Matrix
		}{
			{b.pos, b.aPos}, {b.neg, b.aNeg}, {b.posT, b.aPosT}, {b.negT, b.aNegT},
		}
		for slot, q := range quads {
			q.xb.SetNoiseEpoch(tileEpoch(b.index, slot))
			if err := q.xb.Program(q.tgt); err != nil {
				return fmt.Errorf("pdhg: refreshing tile (block %d, slot %d): %w", b.index, slot, err)
			}
		}
		f.tilesRefreshed++
	}
	return nil
}

// counters aggregates the crossbar activity of every tile in canonical
// order.
func (f *fabric) counters() crossbar.Counters {
	var total crossbar.Counters
	for _, b := range f.blocks {
		total = total.Add(b.pos.Counters()).Add(b.neg.Counters()).
			Add(b.posT.Counters()).Add(b.negT.Counters())
	}
	return total
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
