package pdhg

import "github.com/memlp/memlp/internal/linalg"

// Per-iteration vector kernels. Each runs once (or once per block) per PDHG
// iteration on preallocated buffers, so all of them are annotated
// //memlp:hotpath and allocate nothing.

// primalStep applies the proximal gradient step of the primal
// half-iteration, x ← max(0, x − τ(z − c)), and writes the overrelaxed
// point x̄ ← 2x⁺ − x used by the following forward mat-vec.
//
//memlp:hotpath
func primalStep(x, xbar, z, c linalg.Vector, tau float64) {
	for i := range x {
		xi := x[i] - tau*(z[i]-c[i])
		if xi < 0 {
			xi = 0
		}
		xbar[i] = 2*xi - x[i]
		x[i] = xi
	}
}

// dualStep applies the dual half-iteration y ← max(0, y + σ(v − b)) where
// v is the analog A·x̄.
//
//memlp:hotpath
func dualStep(y, v, b linalg.Vector, sigma float64) {
	for i := range y {
		yi := y[i] + sigma*(v[i]-b[i])
		if yi < 0 {
			yi = 0
		}
		y[i] = yi
	}
}

// axUpdate advances the A·x recurrence: with v = A(2x⁺ − x) and ax = A·x,
// the new product is A·x⁺ = (v + ax)/2 — one cheap combine instead of a
// third analog pass per iteration.
//
//memlp:hotpath
func axUpdate(ax, v linalg.Vector) {
	for i := range ax {
		ax[i] = 0.5 * (v[i] + ax[i])
	}
}

// accumulate folds v into the running ergodic sum.
//
//memlp:hotpath
func accumulate(sum, v linalg.Vector) {
	for i := range sum {
		sum[i] += v[i]
	}
}

// scaleInto writes dst ← alpha·src (the ergodic average).
//
//memlp:hotpath
func scaleInto(dst, src linalg.Vector, alpha float64) {
	for i := range dst {
		dst[i] = alpha * src[i]
	}
}

// subInto subtracts v from dst element-wise (the differential-pair combine).
//
//memlp:hotpath
func subInto(dst, v linalg.Vector) {
	for i := range dst {
		dst[i] -= v[i]
	}
}

// reduceInto adds a block's partial segment into the reduction target.
//
//memlp:hotpath
func reduceInto(dst, part linalg.Vector) {
	for i := range part {
		dst[i] += part[i]
	}
}

// maxPosDiff returns max_i (a[i] − b[i])₊ — the ∞-norm of the positive
// part of a − b, the numerator of the one-sided KKT residuals (Ax ≤ b and
// Aᵀy ≥ c violations).
//
//memlp:hotpath
func maxPosDiff(a, b linalg.Vector) float64 {
	worst := 0.0
	for i := range a {
		if d := a[i] - b[i]; d > worst {
			worst = d
		}
	}
	return worst
}

// dot returns aᵀb for equal-length vectors.
//
//memlp:hotpath
func dot(a, b linalg.Vector) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
