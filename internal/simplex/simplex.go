// Package simplex implements the two-phase primal simplex method — the
// classic software baseline the paper's §2.1 contrasts with interior-point
// methods. It solves the canonical problem
//
//	maximize cᵀx subject to A·x ≤ b, x ≥ 0
//
// with a dense tableau, Bland's anti-cycling rule, phase-1 artificial
// variables for negative right-hand sides, and explicit unbounded/infeasible
// detection.
package simplex

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/lp"
	"github.com/memlp/memlp/internal/trace"
)

// ErrPivotLimit is returned when the pivot budget is exhausted (cycling or a
// pathological instance).
var ErrPivotLimit = errors.New("simplex: pivot limit exceeded")

// Result reports the outcome of a simplex solve.
type Result struct {
	Status    lp.Status
	X         linalg.Vector
	Objective float64
	// Pivots is the total number of pivot operations across both phases.
	Pivots int
	// Trace is the recorded pivot trajectory (oldest first); non-nil only
	// when the solver was built WithTrace. Pivot records carry the running
	// tableau objective-row value (phase-local) in Objective.
	Trace []trace.Record
}

// Solver is a two-phase tableau simplex solver.
type Solver struct {
	maxPivots int
	tol       float64

	// mu serializes solves only when tracing is enabled (the ring is the
	// solver's one piece of mutable state; untraced solvers stay
	// lock-free, preserving the historical fully-concurrent behavior).
	mu   sync.Mutex
	ring *trace.Ring
}

// Option configures the solver.
type Option func(*Solver)

// WithMaxPivots bounds the total pivot count (default 50000).
func WithMaxPivots(n int) Option {
	return func(s *Solver) { s.maxPivots = n }
}

// WithTrace enables per-pivot trace recording into a bounded ring of the
// given capacity (<= 0 means trace.DefaultCapacity); the trajectory is
// returned as Result.Trace.
func WithTrace(capacity int) Option {
	return func(s *Solver) { s.ring = trace.NewRing(capacity) }
}

// New returns a simplex solver.
func New(opts ...Option) (*Solver, error) {
	s := &Solver{maxPivots: 50_000, tol: 1e-9}
	for _, o := range opts {
		o(s)
	}
	if s.maxPivots < 1 {
		return nil, fmt.Errorf("%w: max pivots %d", lp.ErrInvalid, s.maxPivots)
	}
	return s, nil
}

// tableau is a dense simplex tableau. Row 0..m-1 are constraints; the last
// row is the (negated) objective. basis[i] is the variable basic in row i.
type tableau struct {
	rows, cols int // constraint rows, total columns (vars + rhs)
	a          [][]float64
	basis      []int
	tol        float64
}

func (t *tableau) rhs(i int) float64 { return t.a[i][t.cols-1] }

// pivot performs a standard pivot on (row, col).
func (t *tableau) pivot(row, col int) {
	pr := t.a[row]
	pv := pr[col]
	for j := range pr {
		pr[j] /= pv
	}
	for i := range t.a {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		ri := t.a[i]
		for j := range ri {
			ri[j] -= f * pr[j]
		}
	}
	t.basis[row] = col
}

// enteringBland returns the lowest-index column with a positive reduced cost
// in the objective row (we keep the objective row as z-row coefficients to
// MINIMIZE, so "improving" means negative; see build), or -1 at optimality.
func (t *tableau) entering(limit int) int {
	obj := t.a[t.rows]
	for j := 0; j < limit; j++ {
		if obj[j] < -t.tol {
			return j
		}
	}
	return -1
}

// leaving performs the minimum-ratio test with Bland tie-breaking; returns
// -1 if the column is unbounded.
func (t *tableau) leaving(col int) int {
	best := -1
	bestRatio := math.Inf(1)
	for i := 0; i < t.rows; i++ {
		a := t.a[i][col]
		if a > t.tol {
			ratio := t.rhs(i) / a
			if ratio < bestRatio-t.tol ||
				(math.Abs(ratio-bestRatio) <= t.tol && (best == -1 || t.basis[i] < t.basis[best])) {
				best = i
				bestRatio = ratio
			}
		}
	}
	return best
}

// Solve runs two-phase simplex on p.
func (s *Solver) Solve(p *lp.Problem) (*Result, error) {
	return s.SolveContext(context.Background(), p)
}

// SolveContext runs two-phase simplex on p, honoring cancellation and
// deadlines: the context is checked once per pivot, and an interrupted solve
// returns lp.StatusCanceled alongside the wrapped context error.
func (s *Solver) SolveContext(ctx context.Context, p *lp.Problem) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// Simplex pivots over a polyhedral tableau; second-order cones have no
	// vertex structure to pivot on.
	if p.IsConic() {
		return nil, fmt.Errorf("simplex: %w", lp.ErrConicUnsupported)
	}
	if s.ring != nil {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.ring.Reset()
	}
	n, m := p.NumVariables(), p.NumConstraints()

	// Columns: x(n) | slacks(m) | artificials(≤m) | rhs.
	// Rows with negative b are negated first so all right-hand sides are
	// non-negative; those rows get artificial variables.
	needArt := make([]bool, m)
	numArt := 0
	for i := 0; i < m; i++ {
		if p.B[i] < 0 {
			needArt[i] = true
			numArt++
		}
	}
	cols := n + m + numArt + 1
	t := &tableau{rows: m, cols: cols, tol: s.tol, basis: make([]int, m)}
	t.a = make([][]float64, m+1)
	for i := range t.a {
		t.a[i] = make([]float64, cols)
	}
	artCol := n + m
	for i := 0; i < m; i++ {
		sign := 1.0
		if needArt[i] {
			sign = -1
		}
		for j := 0; j < n; j++ {
			t.a[i][j] = sign * p.A.At(i, j)
		}
		t.a[i][n+i] = sign // slack
		t.a[i][cols-1] = sign * p.B[i]
		if needArt[i] {
			t.a[i][artCol] = 1
			t.basis[i] = artCol
			artCol++
		} else {
			t.basis[i] = n + i
		}
	}

	pivots := 0

	// Phase 1: minimize the sum of artificials. Objective row = Σ(-art
	// rows) expressed over non-basic columns.
	if numArt > 0 {
		obj := t.a[m]
		for i := 0; i < m; i++ {
			if !needArt[i] {
				continue
			}
			for j := 0; j < cols; j++ {
				obj[j] -= t.a[i][j]
			}
		}
		// Zero out the artificial columns themselves in the z-row (they are
		// basic with coefficient 1 in the phase-1 objective).
		for j := n + m; j < cols-1; j++ {
			obj[j] = 0
		}
		if err := s.iterate(ctx, t, cols-1, &pivots); err != nil {
			if errors.Is(err, errUnbounded) {
				// Phase 1 is bounded below by 0; unbounded here means a bug.
				return nil, fmt.Errorf("simplex: phase 1 unbounded: internal error")
			}
			if canceled(err) {
				return s.finishResult(&Result{Status: lp.StatusCanceled, Pivots: pivots}), err
			}
			return nil, err
		}
		if -t.a[m][cols-1] > 1e-7 {
			return s.finishResult(&Result{Status: lp.StatusInfeasible, Pivots: pivots}), nil
		}
		// Drive any artificial still in the basis out (degenerate case).
		for i := 0; i < m; i++ {
			if t.basis[i] >= n+m {
				for j := 0; j < n+m; j++ {
					if math.Abs(t.a[i][j]) > s.tol {
						t.pivot(i, j)
						pivots++
						break
					}
				}
			}
		}
	}

	// Phase 2: maximize cᵀx ⇔ minimize −cᵀx. Build the z-row from the
	// original objective, then express it over the current basis.
	obj := t.a[m]
	for j := range obj {
		obj[j] = 0
	}
	for j := 0; j < n; j++ {
		obj[j] = -p.C[j]
	}
	for i := 0; i < m; i++ {
		bi := t.basis[i]
		f := obj[bi]
		if f == 0 {
			continue
		}
		ri := t.a[i]
		for j := range obj {
			obj[j] -= f * ri[j]
		}
	}
	// Forbid re-entering artificial columns.
	limit := n + m
	if err := s.iterate(ctx, t, limit, &pivots); err != nil {
		if errors.Is(err, errUnbounded) {
			return s.finishResult(&Result{Status: lp.StatusUnbounded, Pivots: pivots}), nil
		}
		if canceled(err) {
			return s.finishResult(&Result{Status: lp.StatusCanceled, Pivots: pivots}), err
		}
		return nil, err
	}

	x := linalg.NewVector(n)
	for i := 0; i < m; i++ {
		if t.basis[i] < n {
			x[t.basis[i]] = t.rhs(i)
		}
	}
	obj2, err := p.Objective(x)
	if err != nil {
		return nil, err
	}
	return s.finishResult(&Result{Status: lp.StatusOptimal, X: x, Objective: obj2, Pivots: pivots}), nil
}

// finishResult emits the terminal done record and attaches the trajectory
// snapshot; a no-op when tracing is off. Callers hold s.mu when tracing.
func (s *Solver) finishResult(res *Result) *Result {
	if s.ring == nil {
		return res
	}
	s.ring.Emit(trace.Record{
		Event:     trace.EventDone,
		Status:    res.Status.String(),
		Attempt:   1,
		Iteration: res.Pivots,
		Objective: res.Objective,
	})
	res.Trace = s.ring.Snapshot()
	return res
}

var errUnbounded = errors.New("simplex: unbounded direction")

// canceled reports whether err stems from context cancellation or expiry.
func canceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// iterate pivots until optimality within the given column limit, checking the
// context once per pivot.
func (s *Solver) iterate(ctx context.Context, t *tableau, limit int, pivots *int) error {
	for {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("simplex: solve canceled after %d pivots: %w", *pivots, err)
		}
		if *pivots >= s.maxPivots {
			return fmt.Errorf("%w: %d", ErrPivotLimit, s.maxPivots)
		}
		col := t.entering(limit)
		if col < 0 {
			return nil
		}
		row := t.leaving(col)
		if row < 0 {
			return errUnbounded
		}
		t.pivot(row, col)
		*pivots++
		if s.ring != nil {
			s.ring.Emit(trace.Record{
				Event:     trace.EventPivot,
				Attempt:   1,
				Iteration: *pivots,
				Objective: t.a[t.rows][t.cols-1],
			})
		}
	}
}
