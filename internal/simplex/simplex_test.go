package simplex

import (
	"errors"
	"math"
	"testing"

	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/lp"
	"github.com/memlp/memlp/internal/pdip"
)

func mustProblem(t *testing.T, c []float64, rows [][]float64, b []float64) *lp.Problem {
	t.Helper()
	a, err := linalg.MatrixFromRows(rows)
	if err != nil {
		t.Fatalf("MatrixFromRows: %v", err)
	}
	p, err := lp.New("t", linalg.VectorOf(c...), a, linalg.VectorOf(b...))
	if err != nil {
		t.Fatalf("lp.New: %v", err)
	}
	return p
}

func mustSolver(t *testing.T, opts ...Option) *Solver {
	t.Helper()
	s, err := New(opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestKnownOptima(t *testing.T) {
	tests := []struct {
		name string
		c    []float64
		a    [][]float64
		b    []float64
		opt  float64
	}{
		{"corner", []float64{3, 2}, [][]float64{{1, 1}, {1, 3}}, []float64{4, 6}, 12},
		{"box", []float64{1, 1}, [][]float64{{1, 0}, {0, 1}}, []float64{2, 3}, 5},
		{"vanderbei", []float64{5, 4, 3},
			[][]float64{{2, 3, 1}, {4, 1, 2}, {3, 4, 2}}, []float64{5, 11, 8}, 13},
		{"negative-coeffs", []float64{1, -1}, [][]float64{{-1, 1}, {1, 1}}, []float64{1, 3}, 3},
		{"degenerate", []float64{2, 1}, [][]float64{{1, 1}, {1, 1}, {1, 0}}, []float64{4, 4, 4}, 8},
	}
	s := mustSolver(t)
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			res, err := s.Solve(mustProblem(t, tc.c, tc.a, tc.b))
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			if res.Status != lp.StatusOptimal {
				t.Fatalf("status = %v", res.Status)
			}
			if math.Abs(res.Objective-tc.opt) > 1e-8 {
				t.Errorf("objective = %v, want %v", res.Objective, tc.opt)
			}
		})
	}
}

func TestNegativeRHSPhase1(t *testing.T) {
	// x ≥ 1 encoded as −x ≤ −1; max −x ⇒ x = 1, objective −1.
	p := mustProblem(t, []float64{-1}, [][]float64{{-1}}, []float64{-1})
	res, err := mustSolver(t).Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != lp.StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-(-1)) > 1e-9 {
		t.Errorf("objective = %v, want -1", res.Objective)
	}
	if math.Abs(res.X[0]-1) > 1e-9 {
		t.Errorf("x = %v, want 1", res.X[0])
	}
}

func TestInfeasible(t *testing.T) {
	// x ≤ 1 and x ≥ 2.
	p := mustProblem(t, []float64{1}, [][]float64{{1}, {-1}}, []float64{1, -2})
	res, err := mustSolver(t).Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != lp.StatusInfeasible {
		t.Errorf("status = %v, want infeasible", res.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := mustProblem(t, []float64{1, 0}, [][]float64{{-1, 1}}, []float64{1})
	res, err := mustSolver(t).Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != lp.StatusUnbounded {
		t.Errorf("status = %v, want unbounded", res.Status)
	}
}

func TestGeneratedInfeasibleDetected(t *testing.T) {
	s := mustSolver(t)
	for seed := int64(0); seed < 10; seed++ {
		p, err := lp.GenerateInfeasible(lp.GenConfig{Constraints: 9, Seed: seed})
		if err != nil {
			t.Fatalf("GenerateInfeasible: %v", err)
		}
		res, err := s.Solve(p)
		if err != nil {
			t.Fatalf("seed %d: Solve: %v", seed, err)
		}
		if res.Status != lp.StatusInfeasible {
			t.Errorf("seed %d: status = %v, want infeasible", seed, res.Status)
		}
	}
}

func TestAgreesWithPDIP(t *testing.T) {
	s := mustSolver(t)
	ip, err := pdip.New()
	if err != nil {
		t.Fatalf("pdip.New: %v", err)
	}
	for seed := int64(0); seed < 15; seed++ {
		p, err := lp.GenerateFeasible(lp.GenConfig{Constraints: 15, Seed: seed})
		if err != nil {
			t.Fatalf("GenerateFeasible: %v", err)
		}
		sres, err := s.Solve(p)
		if err != nil {
			t.Fatalf("seed %d: simplex: %v", seed, err)
		}
		ipres, err := ip.Solve(p)
		if err != nil {
			t.Fatalf("seed %d: pdip: %v", seed, err)
		}
		if sres.Status != lp.StatusOptimal || ipres.Status != lp.StatusOptimal {
			t.Fatalf("seed %d: statuses %v / %v", seed, sres.Status, ipres.Status)
		}
		if rel := math.Abs(sres.Objective-ipres.Objective) / (1 + math.Abs(sres.Objective)); rel > 1e-4 {
			t.Errorf("seed %d: simplex %v vs pdip %v", seed, sres.Objective, ipres.Objective)
		}
		ok, err := p.IsFeasible(sres.X, 1e-7)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("seed %d: simplex point infeasible", seed)
		}
	}
}

func TestPivotLimit(t *testing.T) {
	s := mustSolver(t, WithMaxPivots(1))
	p, err := lp.GenerateFeasible(lp.GenConfig{Constraints: 12, Seed: 1})
	if err != nil {
		t.Fatalf("GenerateFeasible: %v", err)
	}
	if _, err := s.Solve(p); !errors.Is(err, ErrPivotLimit) {
		t.Errorf("Solve = %v, want ErrPivotLimit", err)
	}
}

func TestInvalidOptions(t *testing.T) {
	if _, err := New(WithMaxPivots(0)); !errors.Is(err, lp.ErrInvalid) {
		t.Errorf("New = %v, want ErrInvalid", err)
	}
}

func TestInvalidProblem(t *testing.T) {
	s := mustSolver(t)
	if _, err := s.Solve(&lp.Problem{}); !errors.Is(err, lp.ErrInvalid) {
		t.Errorf("Solve = %v, want ErrInvalid", err)
	}
}
