package quant

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name     string
		bits     int
		min, max float64
		wantErr  error
	}{
		{"zero bits", 0, 0, 1, ErrInvalidBits},
		{"too many bits", 25, 0, 1, ErrInvalidBits},
		{"empty range", 8, 1, 1, ErrInvalidRange},
		{"inverted range", 8, 2, 1, ErrInvalidRange},
		{"nan min", 8, math.NaN(), 1, ErrInvalidRange},
		{"inf max", 8, 0, math.Inf(1), ErrInvalidRange},
		{"ok", 8, -1, 1, nil},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.bits, tc.min, tc.max)
			if !errors.Is(err, tc.wantErr) {
				t.Errorf("New(%d, %v, %v) err = %v, want %v", tc.bits, tc.min, tc.max, err, tc.wantErr)
			}
		})
	}
}

func TestLevelsAndStep(t *testing.T) {
	q, err := New(8, 0, 255)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if q.Levels() != 256 {
		t.Errorf("Levels = %d, want 256", q.Levels())
	}
	if q.Step() != 1 {
		t.Errorf("Step = %v, want 1", q.Step())
	}
	min, max := q.Range()
	if min != 0 || max != 255 {
		t.Errorf("Range = [%v, %v], want [0, 255]", min, max)
	}
}

func TestQuantizeSaturation(t *testing.T) {
	q, err := New(4, -1, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := q.Quantize(5); got != 1 {
		t.Errorf("Quantize(5) = %v, want 1", got)
	}
	if got := q.Quantize(-5); got != -1 {
		t.Errorf("Quantize(-5) = %v, want -1", got)
	}
	if got := q.Quantize(math.NaN()); got != -1 {
		t.Errorf("Quantize(NaN) = %v, want -1", got)
	}
}

func TestQuantizeExactGridPoints(t *testing.T) {
	q, err := New(2, 0, 3) // levels at 0, 1, 2, 3
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for k := 0; k < 4; k++ {
		x := float64(k)
		if got := q.Quantize(x); got != x {
			t.Errorf("Quantize(%v) = %v, want exact", x, got)
		}
		if got := q.Index(x); got != k {
			t.Errorf("Index(%v) = %d, want %d", x, got, k)
		}
		if got := q.Value(k); got != x {
			t.Errorf("Value(%d) = %v, want %v", k, got, x)
		}
	}
}

func TestIndexValueSaturate(t *testing.T) {
	q, err := New(2, 0, 3)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if q.Index(-10) != 0 || q.Index(10) != 3 {
		t.Error("Index does not saturate")
	}
	if q.Value(-1) != 0 || q.Value(99) != 3 {
		t.Error("Value does not saturate")
	}
}

func TestQuantizeVectorInPlace(t *testing.T) {
	q, err := New(1, 0, 1) // only levels 0 and 1
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	v := []float64{0.1, 0.9, 0.49, 0.51}
	got := q.QuantizeVector(v)
	want := []float64{0, 1, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("QuantizeVector[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if &got[0] != &v[0] {
		t.Error("QuantizeVector did not operate in place")
	}
}

func TestSymmetricAroundZero(t *testing.T) {
	q, err := SymmetricAroundZero(8, 2)
	if err != nil {
		t.Fatalf("SymmetricAroundZero: %v", err)
	}
	min, max := q.Range()
	if min != -2 || max != 2 {
		t.Errorf("Range = [%v, %v], want [-2, 2]", min, max)
	}
	if _, err := SymmetricAroundZero(8, 0); !errors.Is(err, ErrInvalidRange) {
		t.Errorf("zero amp: got %v, want ErrInvalidRange", err)
	}
	if _, err := SymmetricAroundZero(8, math.NaN()); !errors.Is(err, ErrInvalidRange) {
		t.Errorf("NaN amp: got %v, want ErrInvalidRange", err)
	}
}

func TestPropertyQuantizeErrorBounded(t *testing.T) {
	q, err := New(8, -1, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := r.Float64()*2 - 1
		return math.Abs(q.Quantize(x)-x) <= q.MaxError()+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyQuantizeIdempotent(t *testing.T) {
	q, err := New(6, -3, 7)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	f := func(x float64) bool {
		if math.IsNaN(x) {
			x = 0
		}
		once := q.Quantize(x)
		return q.Quantize(once) == once
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyQuantizeMonotone(t *testing.T) {
	q, err := New(5, 0, 10)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := r.Float64() * 12
		b := r.Float64() * 12
		if a > b {
			a, b = b, a
		}
		return q.Quantize(a) <= q.Quantize(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyIndexValueRoundTrip(t *testing.T) {
	q, err := New(8, -4, 4)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	f := func(k uint8) bool {
		return q.Index(q.Value(int(k))) == int(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
