// Package quant implements the uniform quantizers that model the digital
// boundary of the analog crossbar: DAC-driven input voltages, ADC-sampled
// output voltages, and the multilevel conductance write precision.
//
// The paper (§4.1) stores all voltage inputs and outputs with 8-bit
// precision; conductance writes are likewise limited to a finite number of
// programmable levels (§3.3, refs [16][17]).
package quant

import (
	"errors"
	"fmt"
	"math"
)

// ErrInvalidBits is returned for bit widths outside [1, 24].
var ErrInvalidBits = errors.New("quant: bits must be in [1, 24]")

// ErrInvalidRange is returned when the quantizer range is empty or not finite.
var ErrInvalidRange = errors.New("quant: invalid range")

// Quantizer maps real values onto a uniform grid of 2^bits levels spanning
// [min, max]. Values outside the range saturate.
type Quantizer struct {
	min, max float64
	levels   int
	step     float64
}

// New returns a quantizer with the given bit width over [min, max].
func New(bits int, min, max float64) (*Quantizer, error) {
	if bits < 1 || bits > 24 {
		return nil, fmt.Errorf("%w: %d", ErrInvalidBits, bits)
	}
	if !(min < max) || math.IsInf(min, 0) || math.IsInf(max, 0) || math.IsNaN(min) || math.IsNaN(max) {
		return nil, fmt.Errorf("%w: [%v, %v]", ErrInvalidRange, min, max)
	}
	levels := 1 << uint(bits)
	return &Quantizer{
		min:    min,
		max:    max,
		levels: levels,
		step:   (max - min) / float64(levels-1),
	}, nil
}

// Levels returns the number of representable levels.
func (q *Quantizer) Levels() int { return q.levels }

// Step returns the grid spacing.
func (q *Quantizer) Step() float64 { return q.step }

// Range returns the quantizer's [min, max] interval.
func (q *Quantizer) Range() (min, max float64) { return q.min, q.max }

// Quantize returns the nearest representable value, saturating at the range
// edges. NaN maps to the range minimum.
func (q *Quantizer) Quantize(x float64) float64 {
	if math.IsNaN(x) || x <= q.min {
		return q.min
	}
	if x >= q.max {
		return q.max
	}
	k := math.Round((x - q.min) / q.step)
	return q.min + k*q.step
}

// Index returns the level index of the nearest representable value in
// [0, Levels()-1].
func (q *Quantizer) Index(x float64) int {
	if math.IsNaN(x) || x <= q.min {
		return 0
	}
	if x >= q.max {
		return q.levels - 1
	}
	return int(math.Round((x - q.min) / q.step))
}

// Value returns the representable value at level index k (saturating).
func (q *Quantizer) Value(k int) float64 {
	if k <= 0 {
		return q.min
	}
	if k >= q.levels-1 {
		return q.max
	}
	return q.min + float64(k)*q.step
}

// QuantizeVector quantizes every element of v in place and returns v.
func (q *Quantizer) QuantizeVector(v []float64) []float64 {
	for i, x := range v {
		v[i] = q.Quantize(x)
	}
	return v
}

// MaxError returns the worst-case rounding error for in-range values
// (half the step size).
func (q *Quantizer) MaxError() float64 { return q.step / 2 }

// SymmetricAroundZero returns a quantizer over [-amp, +amp]. This models the
// bipolar DAC/ADC voltage paths of the solver, where signals can take either
// sign within the supply rails.
func SymmetricAroundZero(bits int, amp float64) (*Quantizer, error) {
	if !(amp > 0) || math.IsInf(amp, 0) || math.IsNaN(amp) {
		return nil, fmt.Errorf("%w: amplitude %v", ErrInvalidRange, amp)
	}
	return New(bits, -amp, amp)
}
