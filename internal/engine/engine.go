// Package engine defines the backend contract the public memlp.Solver
// handle dispatches to. Each solver implementation — the crossbar engines of
// Algorithms 1 and 2, the software PDIP baselines, and two-phase simplex —
// is wrapped in a Backend so the public layer holds exactly one code path
// for solving, timing, cancellation, and telemetry, instead of a per-engine
// switch.
package engine

import (
	"context"
	"time"

	"github.com/memlp/memlp/internal/core"
	"github.com/memlp/memlp/internal/crossbar"
	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/lp"
	"github.com/memlp/memlp/internal/noc"
	"github.com/memlp/memlp/internal/trace"
)

// Result is the engine-neutral solve outcome. Analog-only fields (Counters,
// MatrixSize, Resolves) are zero for software engines; Pivots is zero for
// PDIP-family engines.
type Result struct {
	Status     lp.Status
	X, Y       linalg.Vector
	Objective  float64
	Iterations int
	Pivots     int

	PrimalInfeasibility float64
	DualInfeasibility   float64
	DualityGap          float64
	// ConeInfeasibility is the worst second-order-cone violation of the
	// constraint slack (conic problems only; always 0 for pure LPs).
	ConeInfeasibility float64

	// WallTime is the measured duration of this individual solve.
	WallTime time.Duration

	// Analog reports whether the backend simulates crossbar hardware, i.e.
	// whether Counters/MatrixSize/Resolves are meaningful.
	Analog     bool
	Counters   crossbar.Counters
	MatrixSize int
	Resolves   int

	// NoC is the interconnect scatter/gather activity of a tiled solve
	// (zero for single-fabric engines, which account NoC traffic at the
	// public layer instead).
	NoC noc.Stats

	// Restarts and TilesRefreshed are populated by the distributed PDHG
	// engine: adaptive restarts taken, and canonical tiles re-programmed by
	// the periodic conductance refresh.
	Restarts       int
	TilesRefreshed int64

	// Diagnostics carries fault and recovery telemetry from the crossbar
	// engines; non-nil only when a fault model or write-verify is configured.
	Diagnostics *core.Diagnostics

	// Batch is the fabric-pool roll-up of a SolveBatch call (replica count,
	// combined programming cost, per-shard utilization). Non-nil only on the
	// first result of a batch.
	Batch *core.BatchStats

	// Trace is the recorded iteration trajectory (oldest first), with each
	// record's Engine field stamped with the backend name. Non-nil only when
	// tracing was enabled on the underlying solver.
	Trace []trace.Record
}

// Backend is one solver engine behind a memlp.Solver handle. Implementations
// are safe for concurrent use (they serialize internally) and keep their
// iteration workspaces and simulated fabrics across calls, so repeated
// same-shape solves avoid reallocation and reprogramming.
//
// Solve honors ctx: an interrupted solve returns a Result with
// lp.StatusCanceled together with the wrapped context error (both non-nil),
// while hard failures return a nil Result.
type Backend interface {
	// Name identifies the engine (matches memlp.Engine.String()).
	Name() string
	Solve(ctx context.Context, p *lp.Problem) (*Result, error)
}

// WarmStarter is implemented by backends whose solver can seed its interior
// iterate from a prior primal/dual point. Passing nil for either vector
// clears the warm start; a set warm start applies to every subsequent solve
// until replaced. Backends without this interface (simplex, the large-scale
// constant-step engine) have no interior iterate to seed and reject the
// public warm-start option instead.
type WarmStarter interface {
	SetWarmStart(x0, y0 linalg.Vector)
}

// BatchBackend is implemented by backends that can amortize the one-time
// fabric programming across a sequence of problems sharing one constraint
// matrix (the paper's high-data-rate scenario).
type BatchBackend interface {
	Backend
	// SolveBatch solves the sequence on a pool of replicated fabrics. Each
	// result's WallTime and Counters are per-solve marginals; the first result
	// carries the pool's combined programming cost and the BatchStats roll-up.
	// Results are bit-identical regardless of the pool width. On cancellation
	// the results completed so far are returned in input order alongside the
	// wrapped context error, with the interrupted solve's lp.StatusCanceled
	// partial as the last element.
	SolveBatch(ctx context.Context, problems []*lp.Problem) ([]*Result, error)
}
