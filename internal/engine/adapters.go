package engine

import (
	"context"
	"fmt"

	"github.com/memlp/memlp/internal/core"
	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/lp"
	"github.com/memlp/memlp/internal/pdhg"
	"github.com/memlp/memlp/internal/pdip"
	"github.com/memlp/memlp/internal/simplex"
	"github.com/memlp/memlp/internal/trace"
)

// stampEngine labels every trace record with the backend name. The slice is a
// fresh ring snapshot owned by the result, so in-place mutation is safe.
func stampEngine(recs []trace.Record, name string) []trace.Record {
	for i := range recs {
		recs[i].Engine = name
	}
	return recs
}

// Crossbar adapts core.Solver (Algorithm 1) to the Backend contract. It also
// implements BatchBackend: the shared extended system is programmed once and
// each batch member pays only the O(N)-per-iteration coefficient refresh.
type Crossbar struct{ S *core.Solver }

// Name implements Backend.
func (b Crossbar) Name() string { return "crossbar" }

// Solve implements Backend. Conic problems are rejected: the LP engine's
// contract is the scalar complementarity fabric layout, and keeping it
// cone-free guarantees its golden traces stay byte-stable. SOC blocks go
// through the dedicated conic engine instead.
func (b Crossbar) Solve(ctx context.Context, p *lp.Problem) (*Result, error) {
	if p.IsConic() {
		return nil, fmt.Errorf("engine %s: %w (use the conic engine)", b.Name(), lp.ErrConicUnsupported)
	}
	res, err := b.S.SolveContext(ctx, p)
	if res == nil {
		return nil, err
	}
	return fromCore(res, b.Name()), err
}

// Conic adapts core.Solver for conic (LP + second-order cone) problems: the
// same Algorithm 1 extended system, with the SOC rows carrying dense
// Nesterov–Todd blocks instead of scalar complementarity diagonals. Pure LPs
// are accepted too (the all-orthant degenerate case takes the bit-identical
// LP path). Batching is not supported: the shared-matrix pool contract is
// LP-only.
type Conic struct{ S *core.Solver }

// Name implements Backend.
func (b Conic) Name() string { return "conic" }

// Solve implements Backend.
func (b Conic) Solve(ctx context.Context, p *lp.Problem) (*Result, error) {
	res, err := b.S.SolveContext(ctx, p)
	if res == nil {
		return nil, err
	}
	return fromCore(res, b.Name()), err
}

// SetWarmStart implements WarmStarter by forwarding to the core solver.
func (b Crossbar) SetWarmStart(x0, y0 linalg.Vector) { b.S.SetWarmStart(x0, y0) }

// SetWarmStart implements WarmStarter by forwarding to the core solver.
func (b Conic) SetWarmStart(x0, y0 linalg.Vector) { b.S.SetWarmStart(x0, y0) }

// SolveBatch implements BatchBackend. On cancellation the partial results
// are converted and returned with the error, per the BatchBackend contract.
func (b Crossbar) SolveBatch(ctx context.Context, problems []*lp.Problem) ([]*Result, error) {
	results, err := b.S.SolveBatchContext(ctx, problems)
	if len(results) == 0 && err != nil {
		return nil, err
	}
	out := make([]*Result, len(results))
	for i, res := range results {
		out[i] = fromCore(res, b.Name())
	}
	return out, err
}

// CrossbarLargeScale adapts core.LargeScaleSolver (Algorithm 2).
type CrossbarLargeScale struct{ S *core.LargeScaleSolver }

// Name implements Backend.
func (b CrossbarLargeScale) Name() string { return "crossbar-large-scale" }

// Solve implements Backend.
func (b CrossbarLargeScale) Solve(ctx context.Context, p *lp.Problem) (*Result, error) {
	res, err := b.S.SolveContext(ctx, p)
	if res == nil {
		return nil, err
	}
	return fromCore(res, b.Name()), err
}

func fromCore(res *core.Result, name string) *Result {
	return &Result{
		Status:              res.Status,
		X:                   res.X,
		Y:                   res.Y,
		Objective:           res.Objective,
		Iterations:          res.Iterations,
		PrimalInfeasibility: res.PrimalInfeasibility,
		DualInfeasibility:   res.DualInfeasibility,
		DualityGap:          res.DualityGap,
		ConeInfeasibility:   res.ConeInfeasibility,
		WallTime:            res.WallTime,
		Analog:              true,
		Counters:            res.Counters,
		MatrixSize:          res.MatrixSize,
		Resolves:            res.Resolves,
		Diagnostics:         res.Diagnostics,
		Batch:               res.Batch,
		Trace:               stampEngine(res.Trace, name),
	}
}

// PDIP adapts pdip.Solver (full or reduced Newton backend).
type PDIP struct {
	S *pdip.Solver
	// BackendName distinguishes "pdip" from "pdip-reduced" in telemetry.
	BackendName string
}

// Name implements Backend.
func (b PDIP) Name() string { return b.BackendName }

// Solve implements Backend.
func (b PDIP) Solve(ctx context.Context, p *lp.Problem) (*Result, error) {
	start := wallClock()
	res, err := b.S.SolveContext(ctx, p)
	if res == nil {
		return nil, err
	}
	return &Result{
		Status:              res.Status,
		X:                   res.X,
		Y:                   res.Y,
		Objective:           res.Objective,
		Iterations:          res.Iterations,
		PrimalInfeasibility: res.PrimalInfeasibility,
		DualInfeasibility:   res.DualInfeasibility,
		DualityGap:          res.DualityGap,
		ConeInfeasibility:   res.ConeInfeasibility,
		WallTime:            wallSince(start),
		Trace:               stampEngine(res.Trace, b.Name()),
	}, err
}

// SetWarmStart implements WarmStarter by forwarding to the software solver.
func (b PDIP) SetWarmStart(x0, y0 linalg.Vector) { b.S.SetWarmStart(x0, y0) }

// PDHG adapts pdhg.Solver, the distributed first-order engine that tiles
// the constraint matrix across a grid of crossbars connected by the NoC.
type PDHG struct{ S *pdhg.Solver }

// Name implements Backend.
func (b PDHG) Name() string { return "pdhg" }

// Solve implements Backend.
func (b PDHG) Solve(ctx context.Context, p *lp.Problem) (*Result, error) {
	start := wallClock()
	res, err := b.S.SolveContext(ctx, p)
	if res == nil {
		return nil, err
	}
	return &Result{
		Status:              res.Status,
		X:                   res.X,
		Y:                   res.Y,
		Objective:           res.Objective,
		Iterations:          res.Iterations,
		PrimalInfeasibility: res.PrimalInfeasibility,
		DualInfeasibility:   res.DualInfeasibility,
		DualityGap:          res.DualityGap,
		WallTime:            wallSince(start),
		Analog:              true,
		Counters:            res.Counters,
		MatrixSize:          res.MatrixSize,
		NoC:                 res.NoC,
		Restarts:            res.Restarts,
		TilesRefreshed:      res.TilesRefreshed,
		Diagnostics: &core.Diagnostics{
			WriteRetries: res.Counters.WriteRetries,
			Attempts:     1,
			EnergyJoules: res.EnergyJoules,
		},
		Trace: stampEngine(res.Trace, b.Name()),
	}, err
}

// Simplex adapts simplex.Solver.
type Simplex struct{ S *simplex.Solver }

// Name implements Backend.
func (b Simplex) Name() string { return "simplex" }

// Solve implements Backend.
func (b Simplex) Solve(ctx context.Context, p *lp.Problem) (*Result, error) {
	start := wallClock()
	res, err := b.S.SolveContext(ctx, p)
	if res == nil {
		return nil, err
	}
	return &Result{
		Status:    res.Status,
		X:         res.X,
		Objective: res.Objective,
		Pivots:    res.Pivots,
		WallTime:  wallSince(start),
		Trace:     stampEngine(res.Trace, b.Name()),
	}, err
}
