package engine

import "time"

// wallClock and wallSince are this package's only reads of the host clock —
// the //memlp:timing funnels memlpvet's wallclock analyzer enforces. The
// software-backend adapters use them to stamp Result.WallTime; nothing else
// in the adapters may observe the clock.

//memlp:timing
func wallClock() time.Time { return time.Now() }

//memlp:timing
func wallSince(start time.Time) time.Duration { return time.Since(start) }
