// Package noc implements the analog network-on-chip structures of §3.4
// (Fig. 3) that coordinate multiple memristor crossbars into one large
// logical compute fabric.
//
// Two topologies are modelled:
//
//   - Hierarchical (Fig. 3a): crossbars are grouped in fours under an
//     arbiter; four groups form a higher-level group under a higher-level
//     arbiter, recursively — a quad-tree whose depth is ⌈log₄(#tiles)⌉.
//     A centralized controller steers the tree.
//   - Mesh (Fig. 3b): crossbars sit in a 2-D grid with a router at each
//     node, like a multi-core mesh NoC; transfers hop across the grid with
//     distributed control.
//
// Data stays in analog form end-to-end: arbiters use analog buffers and
// bootstrapped switches (ref [21]), so a transfer costs per-hop latency and
// per-element-per-hop energy but no conversion.
//
// The TiledFabric splits a large matrix into square tiles, each programmed
// on its own crossbar. Mat-vec distributes input segments to tile columns,
// runs all tiles' analog multiplies, and reduces partial sums along rows at
// the arbiters. A linear solve closes the arbiters' switches so the tiles'
// word/bit lines compose into one large conductance network, which settles
// as a whole; the simulation realizes this by solving against the composed
// effective matrices of the tiles.
package noc

import (
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/memlp/memlp/internal/crossbar"
	"github.com/memlp/memlp/internal/linalg"
)

// Errors returned by the NoC layer.
var (
	ErrBadConfig = errors.New("noc: invalid configuration")
	ErrTooLarge  = errors.New("noc: matrix exceeds fabric capacity")
)

// Topology selects the interconnect structure of Fig. 3.
type Topology int

const (
	// Hierarchical is the quad-tree structure of Fig. 3(a).
	Hierarchical Topology = iota + 1
	// Mesh is the 2-D grid structure of Fig. 3(b).
	Mesh
)

// String implements fmt.Stringer.
func (t Topology) String() string {
	switch t {
	case Hierarchical:
		return "hierarchical"
	case Mesh:
		return "mesh"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

// Config parameterizes a tiled fabric.
type Config struct {
	// Topology selects Fig. 3(a) or 3(b). Zero means Hierarchical.
	Topology Topology
	// TileSize is the dimension of each constituent crossbar.
	// Zero means 512.
	TileSize int
	// MaxTiles bounds the number of crossbars available. Zero means 256.
	MaxTiles int
	// Crossbar configures each constituent array; its Size is overridden
	// with TileSize.
	Crossbar crossbar.Config
	// HopLatency is the analog transfer latency per NoC hop.
	// Zero means 5 ns.
	HopLatency time.Duration
	// HopEnergyPerElement is the transfer energy per vector element per hop.
	// Zero means 0.1 nJ.
	HopEnergyPerElement float64
}

func (c Config) withDefaults() Config {
	if c.Topology == 0 {
		c.Topology = Hierarchical
	}
	if c.TileSize == 0 {
		c.TileSize = 512
	}
	if c.MaxTiles == 0 {
		c.MaxTiles = 256
	}
	if c.HopLatency == 0 {
		c.HopLatency = 5 * time.Nanosecond
	}
	if c.HopEnergyPerElement == 0 {
		c.HopEnergyPerElement = 0.1e-9
	}
	return c
}

func (c Config) validate() error {
	if c.Topology != Hierarchical && c.Topology != Mesh {
		return fmt.Errorf("%w: topology %d", ErrBadConfig, int(c.Topology))
	}
	if c.TileSize < 1 {
		return fmt.Errorf("%w: tile size %d", ErrBadConfig, c.TileSize)
	}
	if c.MaxTiles < 1 {
		return fmt.Errorf("%w: max tiles %d", ErrBadConfig, c.MaxTiles)
	}
	if c.HopLatency < 0 || c.HopEnergyPerElement < 0 {
		return fmt.Errorf("%w: negative hop cost", ErrBadConfig)
	}
	return nil
}

// Stats accumulates interconnect activity for the cost model.
type Stats struct {
	// Transfers is the number of vector-segment transfers performed.
	Transfers int64
	// ElementHops is Σ (elements moved × hops traversed).
	ElementHops int64
	// MaxHops is the longest path used by any transfer.
	MaxHops int
	// ComposedSolves counts whole-fabric analog solves.
	ComposedSolves int64
}

// Sub returns s − o field-wise, for marginalizing cumulative stats on a
// persistent fabric into per-solve figures. MaxHops is a topology-determined
// high-water mark, not an accumulator, so the current value is kept.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Transfers:      s.Transfers - o.Transfers,
		ElementHops:    s.ElementHops - o.ElementHops,
		MaxHops:        s.MaxHops,
		ComposedSolves: s.ComposedSolves - o.ComposedSolves,
	}
}

// TiledFabric coordinates a grid of crossbars through the NoC. It implements
// the same fabric contract as a single crossbar (Program/UpdateRow/
// UpdateCellInPlace/MatVec/Solve/Counters).
type TiledFabric struct {
	cfg Config

	rows, cols int // logical matrix shape
	gridR      int // tile-grid rows
	gridC      int // tile-grid cols
	tiles      [][]*crossbar.Crossbar

	// deltaOff mirrors crossbar.SetDeltaProgramming at the fabric level; it
	// must be remembered here because Program rebuilds the tile grid.
	deltaOff bool

	stats Stats
}

// New returns an unprogrammed tiled fabric.
func New(cfg Config) (*TiledFabric, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &TiledFabric{cfg: cfg}, nil
}

// Config returns the (defaulted) configuration.
func (f *TiledFabric) Config() Config { return f.cfg }

// Stats returns the cumulative interconnect activity.
func (f *TiledFabric) Stats() Stats { return f.stats }

// Tiles returns the number of crossbars in use.
func (f *TiledFabric) Tiles() int { return f.gridR * f.gridC }

// Capacity returns the largest square matrix dimension the fabric can hold.
func (f *TiledFabric) Capacity() int {
	side := int(math.Sqrt(float64(f.cfg.MaxTiles)))
	return side * f.cfg.TileSize
}

// hops returns the transfer distance (in NoC hops) between the controller
// and tile (r, c), per the configured topology.
func (f *TiledFabric) hops(r, c int) int {
	return hopCount(f.cfg.Topology, f.gridR*f.gridC, r, c)
}

// hopCount is the shared topology hop model: the transfer distance between
// the controller and tile (r, c) of a grid holding tiles crossbars.
func hopCount(top Topology, tiles, r, c int) int {
	switch top {
	case Hierarchical:
		// Quad-tree: depth levels from root to leaf.
		if tiles <= 1 {
			return 1
		}
		return 1 + int(math.Ceil(math.Log(float64(tiles))/math.Log(4)))
	case Mesh:
		// Manhattan distance from the controller at (0, 0).
		return 1 + r + c
	default:
		return 1
	}
}

// Program writes matrix a across the tile grid.
func (f *TiledFabric) Program(a *linalg.Matrix) error {
	t := f.cfg.TileSize
	gridR := (a.Rows() + t - 1) / t
	gridC := (a.Cols() + t - 1) / t
	if gridR*gridC > f.cfg.MaxTiles {
		return fmt.Errorf("%w: %dx%d needs %d tiles of %d, have %d",
			ErrTooLarge, a.Rows(), a.Cols(), gridR*gridC, t, f.cfg.MaxTiles)
	}
	tiles := make([][]*crossbar.Crossbar, gridR)
	for i := range tiles {
		tiles[i] = make([]*crossbar.Crossbar, gridC)
		for j := range tiles[i] {
			cfg := f.cfg.Crossbar
			cfg.Size = t
			xb, err := crossbar.New(cfg)
			if err != nil {
				return fmt.Errorf("noc: building tile (%d,%d): %w", i, j, err)
			}
			xb.SetDeltaProgramming(!f.deltaOff)
			rows := minInt(t, a.Rows()-i*t)
			cols := minInt(t, a.Cols()-j*t)
			block, err := a.Submatrix(i*t, j*t, rows, cols)
			if err != nil {
				return err
			}
			if err := xb.Program(block); err != nil {
				return fmt.Errorf("noc: programming tile (%d,%d): %w", i, j, err)
			}
			tiles[i][j] = xb
			f.trackTransfer(rows, f.hops(i, j))
		}
	}
	f.rows, f.cols = a.Rows(), a.Cols()
	f.gridR, f.gridC = gridR, gridC
	f.tiles = tiles
	return nil
}

// UpdateRow rewrites logical row i across the tiles that hold it.
func (f *TiledFabric) UpdateRow(i int, row linalg.Vector) error {
	if f.tiles == nil {
		return crossbar.ErrNotProgrammed
	}
	if i < 0 || i >= f.rows || len(row) != f.cols {
		return fmt.Errorf("%w: row %d len %d for %dx%d", linalg.ErrDimensionMismatch, i, len(row), f.rows, f.cols)
	}
	t := f.cfg.TileSize
	tr, lr := i/t, i%t
	for j := 0; j < f.gridC; j++ {
		lo := j * t
		hi := minInt(lo+t, f.cols)
		if err := f.tiles[tr][j].UpdateRow(lr, row[lo:hi]); err != nil {
			return err
		}
		f.trackTransfer(hi-lo, f.hops(tr, j))
	}
	return nil
}

// UpdateCellInPlace rewrites one logical coefficient on its tile.
func (f *TiledFabric) UpdateCellInPlace(i, j int, value float64) error {
	if f.tiles == nil {
		return crossbar.ErrNotProgrammed
	}
	if i < 0 || i >= f.rows || j < 0 || j >= f.cols {
		return fmt.Errorf("%w: cell (%d,%d) of %dx%d", linalg.ErrDimensionMismatch, i, j, f.rows, f.cols)
	}
	t := f.cfg.TileSize
	f.trackTransfer(1, f.hops(i/t, j/t))
	return f.tiles[i/t][j/t].UpdateCellInPlace(i%t, j%t, value)
}

// MatVec multiplies the programmed matrix by v: input segments are broadcast
// to tile columns, every tile multiplies in parallel, and partial outputs are
// summed along tile rows at the arbiters (analog summation).
func (f *TiledFabric) MatVec(v linalg.Vector) (linalg.Vector, error) {
	if f.tiles == nil {
		return nil, crossbar.ErrNotProgrammed
	}
	if len(v) != f.cols {
		return nil, fmt.Errorf("%w: matvec input %d for %dx%d", linalg.ErrDimensionMismatch, len(v), f.rows, f.cols)
	}
	t := f.cfg.TileSize
	out := linalg.NewVector(f.rows)
	for i := 0; i < f.gridR; i++ {
		rlo := i * t
		rhi := minInt(rlo+t, f.rows)
		for j := 0; j < f.gridC; j++ {
			clo := j * t
			chi := minInt(clo+t, f.cols)
			seg := v[clo:chi]
			part, err := f.tiles[i][j].MatVec(seg)
			if err != nil {
				return nil, fmt.Errorf("noc: tile (%d,%d) mat-vec: %w", i, j, err)
			}
			for k := range part {
				out[rlo+k] += part[k]
			}
			// Input broadcast + partial-sum collection.
			f.trackTransfer(chi-clo, f.hops(i, j))
			f.trackTransfer(rhi-rlo, f.hops(i, j))
		}
	}
	return out, nil
}

// MatVecResidual computes base − factor∘(programmedMatrix·v) with the final
// subtraction at the arbiters' summing amplifiers: the tiles' partial sums
// stay analog until the reference is subtracted, and only the residual is
// digitized (per-element).
func (f *TiledFabric) MatVecResidual(base, v, factor linalg.Vector) (linalg.Vector, error) {
	if f.tiles == nil {
		return nil, crossbar.ErrNotProgrammed
	}
	if len(base) != f.rows {
		return nil, fmt.Errorf("%w: base %d for %d rows", linalg.ErrDimensionMismatch, len(base), f.rows)
	}
	if factor != nil && len(factor) != f.rows {
		return nil, fmt.Errorf("%w: factor %d for %d rows", linalg.ErrDimensionMismatch, len(factor), f.rows)
	}
	t, err := f.MatVec(v)
	if err != nil {
		return nil, err
	}
	out := linalg.NewVector(f.rows)
	for i := range out {
		ti := t[i]
		if factor != nil {
			ti *= factor[i]
		}
		out[i] = base[i] - ti
	}
	f.ioQuantize(out)
	return out, nil
}

// Solve solves programmedMatrix · x = b as one composed analog operation:
// the arbiters close their switches so the tiles form a single conductance
// network, which settles to the solution of the composed system. The
// simulation assembles each tile's realized (variation- and quantization-
// perturbed) effective matrix and solves the composed system; cost-wise this
// is one analog settle plus the tree/mesh coordination hops.
func (f *TiledFabric) Solve(b linalg.Vector) (linalg.Vector, error) {
	if f.tiles == nil {
		return nil, crossbar.ErrNotProgrammed
	}
	if f.rows != f.cols {
		return nil, fmt.Errorf("%w: solve on %dx%d fabric", linalg.ErrNotSquare, f.rows, f.cols)
	}
	if len(b) != f.rows {
		return nil, fmt.Errorf("%w: rhs %d for %dx%d", linalg.ErrDimensionMismatch, len(b), f.rows, f.cols)
	}
	t := f.cfg.TileSize
	composed := linalg.NewMatrix(f.rows, f.cols)
	for i := 0; i < f.gridR; i++ {
		for j := 0; j < f.gridC; j++ {
			eff, err := f.tiles[i][j].SolveEffectiveMatrix()
			if err != nil {
				return nil, fmt.Errorf("noc: tile (%d,%d) effective matrix: %w", i, j, err)
			}
			if err := composed.SetSubmatrix(i*t, j*t, eff); err != nil {
				return nil, err
			}
		}
	}
	rhs := b.Clone()
	f.ioQuantize(rhs)
	x, err := linalg.SolveStructured(composed, rhs)
	if err != nil {
		if errors.Is(err, linalg.ErrSingular) {
			return nil, fmt.Errorf("%w: %v", crossbar.ErrSingular, err)
		}
		return nil, err
	}
	f.ioQuantize(x)
	f.stats.ComposedSolves++
	// RHS distribution and solution collection across the fabric.
	for i := 0; i < f.gridR; i++ {
		rl := minInt(t, f.rows-i*t)
		f.trackTransfer(rl, f.hops(i, 0))
		f.trackTransfer(rl, f.hops(i, f.gridC-1))
	}
	return x, nil
}

// SetNoiseEpoch rebases every tile's stochastic write-noise state to the
// given per-problem epoch (see crossbar.SetNoiseEpoch). Tiles share one
// variation model, so the reseed is idempotent across tiles; the per-tile
// write-sequence counters and verify caches are rebased individually. The
// fabric pool calls this before each batch member so pooled NoC solves stay
// bit-identical regardless of which replica runs which problem.
func (f *TiledFabric) SetNoiseEpoch(epoch int64) {
	for _, row := range f.tiles {
		for _, xb := range row {
			xb.SetNoiseEpoch(epoch)
		}
	}
}

// SetDeltaProgramming toggles delta-programming on every tile (current and
// future — the flag survives the tile-grid rebuild a re-Program performs).
// See crossbar.SetDeltaProgramming.
func (f *TiledFabric) SetDeltaProgramming(on bool) {
	f.deltaOff = !on
	for _, row := range f.tiles {
		for _, xb := range row {
			xb.SetDeltaProgramming(on)
		}
	}
}

// Counters aggregates the constituent crossbars' counters.
func (f *TiledFabric) Counters() crossbar.Counters {
	var total crossbar.Counters
	for _, row := range f.tiles {
		for _, xb := range row {
			total = total.Add(xb.Counters())
		}
	}
	return total
}

func (f *TiledFabric) trackTransfer(elements, hops int) {
	f.stats.Transfers++
	f.stats.ElementHops += int64(elements * hops)
	if hops > f.stats.MaxHops {
		f.stats.MaxHops = hops
	}
}

// ioQuantize applies the composed solve's DAC/ADC boundary: per-element
// quantization at the tile I/O precision (mirrors the per-element
// programmable-gain converter model of the crossbar package).
func (f *TiledFabric) ioQuantize(v linalg.Vector) {
	bits := f.cfg.Crossbar.IOBits
	if bits == 0 {
		bits = 8
	}
	step := math.Exp2(-float64(bits - 1))
	for i, e := range v {
		if e == 0 || math.IsNaN(e) || math.IsInf(e, 0) {
			continue
		}
		scale := math.Exp2(math.Ceil(math.Log2(math.Abs(e)))) * step
		v[i] = math.Round(e/scale) * scale
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
