package noc

import (
	"errors"
	"testing"
	"time"
)

func mustRouter(t *testing.T, cfg Config, gridR, gridC int) *Router {
	t.Helper()
	r, err := NewRouter(cfg, gridR, gridC)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	return r
}

// TestMeshLatencyMonotoneInManhattanDistance pins the mesh routing model:
// a transfer to block (br, bc) costs 1 + br + bc hops, so per-hop latency
// must grow strictly with Manhattan distance from the controller corner and
// be equal along every anti-diagonal.
func TestMeshLatencyMonotoneInManhattanDistance(t *testing.T) {
	const hop = 3 * time.Nanosecond
	r := mustRouter(t, Config{Topology: Mesh, HopLatency: hop, MaxTiles: 64}, 4, 4)

	byDistance := map[int]time.Duration{}
	for br := 0; br < 4; br++ {
		for bc := 0; bc < 4; bc++ {
			dist := br + bc
			got := r.TransferLatency(br, bc)
			if want := time.Duration(1+dist) * hop; got != want {
				t.Errorf("TransferLatency(%d,%d) = %v, want %v (1+%d hops)", br, bc, got, want, dist)
			}
			if prev, ok := byDistance[dist]; ok && prev != got {
				t.Errorf("blocks at distance %d disagree: %v vs %v", dist, prev, got)
			}
			byDistance[dist] = got
		}
	}
	for dist := 1; dist <= 6; dist++ {
		if byDistance[dist] <= byDistance[dist-1] {
			t.Errorf("latency not strictly increasing: dist %d → %v, dist %d → %v",
				dist-1, byDistance[dist-1], dist, byDistance[dist])
		}
	}
}

func TestHierarchicalHopsUniform(t *testing.T) {
	// 16 blocks: quad-tree depth ⌈log₄ 16⌉ = 2, so every block is 3 hops out.
	r := mustRouter(t, Config{Topology: Hierarchical, MaxTiles: 64}, 4, 4)
	for br := 0; br < 4; br++ {
		for bc := 0; bc < 4; bc++ {
			if got := r.Hops(br, bc); got != 3 {
				t.Errorf("Hops(%d,%d) = %d, want 3", br, bc, got)
			}
		}
	}
}

func TestRouterValidation(t *testing.T) {
	if _, err := NewRouter(Config{}, 0, 1); !errors.Is(err, ErrBadConfig) {
		t.Errorf("grid 0x1: %v, want ErrBadConfig", err)
	}
	if _, err := NewRouter(Config{}, 1, -1); !errors.Is(err, ErrBadConfig) {
		t.Errorf("grid 1x-1: %v, want ErrBadConfig", err)
	}
	if _, err := NewRouter(Config{MaxTiles: 4}, 3, 3); !errors.Is(err, ErrTooLarge) {
		t.Errorf("9 blocks on 4 tiles: %v, want ErrTooLarge", err)
	}
	if _, err := NewRouter(Config{Topology: Topology(9)}, 1, 1); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad topology: %v, want ErrBadConfig", err)
	}
}

func TestRouterAppliesDefaults(t *testing.T) {
	r := mustRouter(t, Config{}, 1, 1)
	cfg := r.Config()
	if cfg.Topology != Hierarchical || cfg.TileSize != 512 || cfg.MaxTiles != 256 || cfg.HopLatency <= 0 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func TestRouterScatterGatherAccounting(t *testing.T) {
	r := mustRouter(t, Config{Topology: Mesh, MaxTiles: 64}, 2, 2)
	r.Scatter(0, 0, 10) // 1 hop
	r.Gather(1, 1, 5)   // 3 hops
	s := r.Stats()
	if s.Transfers != 2 {
		t.Errorf("Transfers = %d, want 2", s.Transfers)
	}
	if want := int64(10*1 + 5*3); s.ElementHops != want {
		t.Errorf("ElementHops = %d, want %d", s.ElementHops, want)
	}
	if s.MaxHops != 3 {
		t.Errorf("MaxHops = %d, want 3", s.MaxHops)
	}
}
