package noc

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/memlp/memlp/internal/crossbar"
	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/variation"
)

// smallTileConfig forces multiple tiles even for modest matrices.
func smallTileConfig(topology Topology) Config {
	return Config{
		Topology: topology,
		TileSize: 8,
		MaxTiles: 64,
		Crossbar: crossbar.Config{IOBits: 16, WriteBits: 16},
	}
}

func mustFabric(t *testing.T, cfg Config) *TiledFabric {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return f
}

func randomNonNeg(r *rand.Rand, rows, cols int) *linalg.Matrix {
	m := linalg.NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, r.Float64()*3)
		}
	}
	for i := 0; i < rows && i < cols; i++ {
		m.Set(i, i, m.At(i, i)+10)
	}
	return m
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"bad topology", func(c *Config) { c.Topology = Topology(9) }},
		{"bad tile size", func(c *Config) { c.TileSize = -1 }},
		{"bad max tiles", func(c *Config) { c.MaxTiles = -2 }},
		{"negative hop latency", func(c *Config) { c.HopLatency = -1 }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallTileConfig(Mesh)
			tc.mutate(&cfg)
			if _, err := New(cfg); !errors.Is(err, ErrBadConfig) {
				t.Errorf("New = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestDefaults(t *testing.T) {
	f := mustFabric(t, Config{})
	cfg := f.Config()
	if cfg.Topology != Hierarchical || cfg.TileSize != 512 || cfg.MaxTiles != 256 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
	if f.Capacity() != 16*512 {
		t.Errorf("Capacity = %d, want %d", f.Capacity(), 16*512)
	}
}

func TestTopologyString(t *testing.T) {
	if Hierarchical.String() != "hierarchical" || Mesh.String() != "mesh" {
		t.Error("Topology.String wrong")
	}
	if Topology(7).String() == "" {
		t.Error("unknown topology String empty")
	}
}

func TestProgramTooLarge(t *testing.T) {
	f := mustFabric(t, Config{TileSize: 4, MaxTiles: 4, Crossbar: crossbar.Config{IOBits: 16, WriteBits: 16}})
	// 9x9 needs a 3x3 grid = 9 tiles > 4.
	if err := f.Program(linalg.NewMatrix(9, 9)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("Program = %v, want ErrTooLarge", err)
	}
}

func TestUnprogrammedOps(t *testing.T) {
	f := mustFabric(t, smallTileConfig(Mesh))
	if _, err := f.MatVec(linalg.VectorOf(1)); !errors.Is(err, crossbar.ErrNotProgrammed) {
		t.Errorf("MatVec: %v", err)
	}
	if _, err := f.Solve(linalg.VectorOf(1)); !errors.Is(err, crossbar.ErrNotProgrammed) {
		t.Errorf("Solve: %v", err)
	}
	if err := f.UpdateRow(0, linalg.VectorOf(1)); !errors.Is(err, crossbar.ErrNotProgrammed) {
		t.Errorf("UpdateRow: %v", err)
	}
	if err := f.UpdateCellInPlace(0, 0, 1); !errors.Is(err, crossbar.ErrNotProgrammed) {
		t.Errorf("UpdateCellInPlace: %v", err)
	}
}

func TestTiledMatVecMatchesIdeal(t *testing.T) {
	for _, topo := range []Topology{Hierarchical, Mesh} {
		t.Run(topo.String(), func(t *testing.T) {
			r := rand.New(rand.NewSource(4))
			f := mustFabric(t, smallTileConfig(topo))
			a := randomNonNeg(r, 20, 20) // 3x3 tile grid with ragged edges
			if err := f.Program(a); err != nil {
				t.Fatalf("Program: %v", err)
			}
			if f.Tiles() != 9 {
				t.Errorf("Tiles = %d, want 9", f.Tiles())
			}
			v := linalg.NewVector(20)
			for i := range v {
				v[i] = r.Float64()*2 - 1
			}
			got, err := f.MatVec(v)
			if err != nil {
				t.Fatalf("MatVec: %v", err)
			}
			want, err := a.MatVec(v)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if rel := math.Abs(got[i]-want[i]) / (1 + math.Abs(want[i])); rel > 5e-3 {
					t.Errorf("MatVec[%d] = %v, want %v", i, got[i], want[i])
				}
			}
		})
	}
}

func TestTiledSolveMatchesIdeal(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	f := mustFabric(t, smallTileConfig(Hierarchical))
	a := randomNonNeg(r, 20, 20)
	if err := f.Program(a); err != nil {
		t.Fatalf("Program: %v", err)
	}
	b := linalg.NewVector(20)
	for i := range b {
		b[i] = r.Float64()*2 - 1
	}
	got, err := f.Solve(b)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	want, err := linalg.SolveDense(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if rel := math.Abs(got[i]-want[i]) / (1 + math.Abs(want[i])); rel > 5e-3 {
			t.Errorf("Solve[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if f.Stats().ComposedSolves != 1 {
		t.Errorf("ComposedSolves = %d, want 1", f.Stats().ComposedSolves)
	}
}

func TestTiledUpdateRow(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	f := mustFabric(t, smallTileConfig(Mesh))
	a := randomNonNeg(r, 12, 12)
	if err := f.Program(a); err != nil {
		t.Fatalf("Program: %v", err)
	}
	newRow := linalg.NewVector(12)
	newRow[3] = 7
	if err := f.UpdateRow(9, newRow); err != nil {
		t.Fatalf("UpdateRow: %v", err)
	}
	v := linalg.NewVector(12)
	v[3] = 1
	got, err := f.MatVec(v)
	if err != nil {
		t.Fatalf("MatVec: %v", err)
	}
	if math.Abs(got[9]-7) > 0.1 {
		t.Errorf("row update not visible: got[9] = %v, want 7", got[9])
	}
	if err := f.UpdateRow(99, newRow); !errors.Is(err, linalg.ErrDimensionMismatch) {
		t.Errorf("bad row: %v", err)
	}
}

func TestTiledUpdateCellInPlace(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := mustFabric(t, smallTileConfig(Mesh))
	a := randomNonNeg(r, 12, 12)
	if err := f.Program(a); err != nil {
		t.Fatalf("Program: %v", err)
	}
	if err := f.UpdateCellInPlace(10, 10, 2.5); err != nil {
		t.Fatalf("UpdateCellInPlace: %v", err)
	}
	v := linalg.NewVector(12)
	v[10] = 1
	got, err := f.MatVec(v)
	if err != nil {
		t.Fatalf("MatVec: %v", err)
	}
	if math.Abs(got[10]-2.5) > 0.1 {
		t.Errorf("cell update not visible: got[10] = %v, want 2.5", got[10])
	}
	if err := f.UpdateCellInPlace(-1, 0, 1); !errors.Is(err, linalg.ErrDimensionMismatch) {
		t.Errorf("bad cell: %v", err)
	}
}

func TestHopAccounting(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	a := randomNonNeg(r, 16, 16)
	v := linalg.NewVector(16)
	v.Fill(1)

	hier := mustFabric(t, smallTileConfig(Hierarchical))
	if err := hier.Program(a); err != nil {
		t.Fatalf("Program: %v", err)
	}
	if _, err := hier.MatVec(v); err != nil {
		t.Fatalf("MatVec: %v", err)
	}
	mesh := mustFabric(t, smallTileConfig(Mesh))
	if err := mesh.Program(a); err != nil {
		t.Fatalf("Program: %v", err)
	}
	if _, err := mesh.MatVec(v); err != nil {
		t.Fatalf("MatVec: %v", err)
	}

	hs, ms := hier.Stats(), mesh.Stats()
	if hs.Transfers == 0 || ms.Transfers == 0 {
		t.Fatal("transfers not tracked")
	}
	if hs.ElementHops == 0 || ms.ElementHops == 0 {
		t.Fatal("element-hops not tracked")
	}
	// 2x2 grid: quad-tree depth is 1+1 = 2 for every tile; mesh worst case
	// is 1+1+1 = 3 hops to tile (1,1).
	if hs.MaxHops != 2 {
		t.Errorf("hierarchical MaxHops = %d, want 2", hs.MaxHops)
	}
	if ms.MaxHops != 3 {
		t.Errorf("mesh MaxHops = %d, want 3", ms.MaxHops)
	}
}

func TestCountersAggregate(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	f := mustFabric(t, smallTileConfig(Hierarchical))
	a := randomNonNeg(r, 16, 16)
	if err := f.Program(a); err != nil {
		t.Fatalf("Program: %v", err)
	}
	c := f.Counters()
	if c.CellWrites != 16*16 {
		t.Errorf("CellWrites = %d, want 256", c.CellWrites)
	}
	v := linalg.NewVector(16)
	if _, err := f.MatVec(v); err != nil {
		t.Fatalf("MatVec: %v", err)
	}
	if got := f.Counters().MatVecOps; got != 4 {
		t.Errorf("MatVecOps = %d, want 4 (one per tile)", got)
	}
}

func TestTiledWithVariation(t *testing.T) {
	vm, err := variation.NewPaperModel(0.10, 3)
	if err != nil {
		t.Fatalf("NewPaperModel: %v", err)
	}
	cfg := smallTileConfig(Hierarchical)
	cfg.Crossbar = crossbar.Config{Variation: vm}
	f := mustFabric(t, cfg)
	r := rand.New(rand.NewSource(10))
	a := randomNonNeg(r, 16, 16)
	if err := f.Program(a); err != nil {
		t.Fatalf("Program: %v", err)
	}
	v := linalg.NewVector(16)
	v.Fill(1)
	got, err := f.MatVec(v)
	if err != nil {
		t.Fatalf("MatVec: %v", err)
	}
	want, err := a.MatVec(v)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := got.Sub(want)
	if err != nil {
		t.Fatal(err)
	}
	rel := diff.NormInf() / want.NormInf()
	if rel == 0 {
		t.Error("variation had no effect")
	}
	if rel > 0.2 {
		t.Errorf("variation error %v unreasonably large", rel)
	}
}

func TestSolveNonSquare(t *testing.T) {
	f := mustFabric(t, smallTileConfig(Mesh))
	a := linalg.NewMatrix(12, 8)
	for i := 0; i < 8; i++ {
		a.Set(i, i, 1)
	}
	if err := f.Program(a); err != nil {
		t.Fatalf("Program: %v", err)
	}
	if _, err := f.Solve(linalg.NewVector(12)); !errors.Is(err, linalg.ErrNotSquare) {
		t.Errorf("Solve: %v, want ErrNotSquare", err)
	}
}

func TestTiledMatVecResidual(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	f := mustFabric(t, smallTileConfig(Hierarchical))
	a := randomNonNeg(r, 12, 12)
	if err := f.Program(a); err != nil {
		t.Fatalf("Program: %v", err)
	}
	v := linalg.NewVector(12)
	base := linalg.NewVector(12)
	for i := range v {
		v[i] = r.Float64()*2 - 1
		base[i] = r.Float64() * 5
	}
	got, err := f.MatVecResidual(base, v, nil)
	if err != nil {
		t.Fatalf("MatVecResidual: %v", err)
	}
	want, err := a.MatVec(v)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		exact := base[i] - want[i]
		if rel := math.Abs(got[i]-exact) / (1 + math.Abs(exact)); rel > 1e-2 {
			t.Errorf("residual[%d] = %v, want %v", i, got[i], exact)
		}
	}
	if _, err := f.MatVecResidual(linalg.VectorOf(1), v, nil); !errors.Is(err, linalg.ErrDimensionMismatch) {
		t.Errorf("bad base: %v", err)
	}
	if _, err := f.MatVecResidual(base, v, linalg.VectorOf(1)); !errors.Is(err, linalg.ErrDimensionMismatch) {
		t.Errorf("bad factor: %v", err)
	}
}
