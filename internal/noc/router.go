package noc

import (
	"fmt"
	"time"
)

// Router models the NoC's vector scatter/gather traffic for engines that
// own their per-block crossbars directly instead of going through a
// TiledFabric — the distributed PDHG engine tiles A into canonical blocks
// and moves primal/dual vector segments to and from each block every
// half-iteration.
//
// Accounting is keyed by canonical block coordinates (the block's position
// in the tile grid of the matrix), NOT by which worker goroutine happens to
// execute the block. That makes the modeled latency and energy a pure
// function of the problem's tiling, so trace records stay bit-identical
// across worker-grid shapes (the PDHG determinism contract).
type Router struct {
	cfg   Config
	gridR int
	gridC int
	stats Stats
}

// NewRouter returns a router for a gridR×gridC canonical block grid.
func NewRouter(cfg Config, gridR, gridC int) (*Router, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if gridR < 1 || gridC < 1 {
		return nil, fmt.Errorf("%w: router grid %dx%d", ErrBadConfig, gridR, gridC)
	}
	if gridR*gridC > cfg.MaxTiles {
		return nil, fmt.Errorf("%w: %dx%d blocks need %d tiles, have %d",
			ErrTooLarge, gridR, gridC, gridR*gridC, cfg.MaxTiles)
	}
	return &Router{cfg: cfg, gridR: gridR, gridC: gridC}, nil
}

// Config returns the (defaulted) configuration.
func (r *Router) Config() Config { return r.cfg }

// Hops returns the transfer distance between the controller and canonical
// block (br, bc) under the configured topology: 1+⌈log₄ blocks⌉ for the
// quad-tree, 1 + Manhattan distance from (0, 0) for the mesh.
func (r *Router) Hops(br, bc int) int {
	return hopCount(r.cfg.Topology, r.gridR*r.gridC, br, bc)
}

// TransferLatency returns the modeled one-way latency of a transfer to
// canonical block (br, bc): hops × per-hop latency.
func (r *Router) TransferLatency(br, bc int) time.Duration {
	return time.Duration(r.Hops(br, bc)) * r.cfg.HopLatency
}

// Scatter accounts a controller→block transfer of elements vector entries
// (an input-segment broadcast before a per-block mat-vec).
func (r *Router) Scatter(br, bc, elements int) {
	r.track(elements, r.Hops(br, bc))
}

// Gather accounts a block→controller transfer of elements vector entries
// (a partial-result collection after a per-block mat-vec).
func (r *Router) Gather(br, bc, elements int) {
	r.track(elements, r.Hops(br, bc))
}

// Stats returns the cumulative scatter/gather activity. Feed it to
// perf.NoCCost for the modeled latency/energy figures.
func (r *Router) Stats() Stats { return r.stats }

func (r *Router) track(elements, hops int) {
	r.stats.Transfers++
	r.stats.ElementHops += int64(elements * hops)
	if hops > r.stats.MaxHops {
		r.stats.MaxHops = hops
	}
}
