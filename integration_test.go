package memlp

// Cross-module integration tests: these exercise the full public pipeline
// (generation → serialization → solving on every engine → hardware
// estimation) and the invariants that tie the subsystems together.

import (
	"bytes"
	"math"
	"testing"
)

// TestEndToEndPipeline generates an instance, round-trips it through the
// textual format, solves it with every engine, and cross-checks objectives.
func TestEndToEndPipeline(t *testing.T) {
	p, err := GenerateFeasible(15, 0, 77)
	if err != nil {
		t.Fatalf("GenerateFeasible: %v", err)
	}

	var buf bytes.Buffer
	if err := p.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	p2, err := ReadProblem(&buf)
	if err != nil {
		t.Fatalf("ReadProblem: %v", err)
	}

	exact, err := Solve(p2, EngineSimplex)
	if err != nil {
		t.Fatalf("simplex: %v", err)
	}
	if exact.Status != StatusOptimal {
		t.Fatalf("simplex status: %v", exact.Status)
	}

	engines := []Engine{EnginePDIP, EnginePDIPReduced, EngineCrossbar, EngineCrossbarLargeScale}
	for _, e := range engines {
		var opts []Option
		if e == EngineCrossbar || e == EngineCrossbarLargeScale {
			opts = append(opts, WithSeed(3)) // seed only configures crossbar variation draws
		}
		sol, err := Solve(p2, e, opts...)
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if sol.Status != StatusOptimal {
			t.Errorf("%v: status %v", e, sol.Status)
			continue
		}
		tol := 1e-3
		if e == EngineCrossbar || e == EngineCrossbarLargeScale {
			tol = 0.08 // analog accuracy floor
		}
		if rel := math.Abs(sol.Objective-exact.Objective) / (1 + math.Abs(exact.Objective)); rel > tol {
			t.Errorf("%v: objective %v vs exact %v (rel %v)", e, sol.Objective, exact.Objective, rel)
		}
	}
}

// TestWeakDualityAcrossEngines verifies a fundamental invariant: the dual
// problem's optimum equals the negated primal optimum (strong duality), and
// any crossbar answer stays within its accuracy floor of that value.
func TestWeakDualityAcrossEngines(t *testing.T) {
	p, err := GenerateFeasible(12, 0, 5)
	if err != nil {
		t.Fatalf("GenerateFeasible: %v", err)
	}
	primal, err := Solve(p, EnginePDIPReduced)
	if err != nil {
		t.Fatalf("primal: %v", err)
	}
	dual, err := Solve(p.Dual(), EnginePDIPReduced)
	if err != nil {
		t.Fatalf("dual: %v", err)
	}
	if primal.Status != StatusOptimal || dual.Status != StatusOptimal {
		t.Fatalf("statuses: %v / %v", primal.Status, dual.Status)
	}
	if diff := math.Abs(primal.Objective + dual.Objective); diff > 1e-3*(1+math.Abs(primal.Objective)) {
		t.Errorf("strong duality violated: %v vs %v", primal.Objective, -dual.Objective)
	}
}

// TestCrossbarSolutionFeasibility checks the α-relaxed feasibility contract:
// every optimal crossbar answer satisfies A·x ≤ α·b for the α implied by its
// variation level.
func TestCrossbarSolutionFeasibility(t *testing.T) {
	for _, varPct := range []float64{0, 0.10} {
		for seed := int64(0); seed < 3; seed++ {
			p, err := GenerateFeasible(12, 0, 50+seed)
			if err != nil {
				t.Fatalf("GenerateFeasible: %v", err)
			}
			sol, err := Solve(p, EngineCrossbar, WithVariation(varPct), WithSeed(seed))
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			if sol.Status != StatusOptimal {
				continue // rejection is allowed; wrong answers are not
			}
			ok, err := p.IsFeasible(sol.X, 0.05+2*varPct)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Errorf("var %v seed %d: optimal answer violates α-feasibility", varPct, seed)
			}
		}
	}
}

// TestHardwareEstimateScaling checks the O(N)-per-iteration claim end to
// end: quadrupling the problem size must scale per-iteration cell writes by
// about 4× (the paper's 2.7N refresh), not 16× (an O(N²) reprogram). The
// one-time programming cost is cancelled by differencing two runs of the
// same instance with different iteration budgets.
func TestHardwareEstimateScaling(t *testing.T) {
	perIterationWrites := func(m int) float64 {
		p, err := GenerateFeasible(m, 0, 9)
		if err != nil {
			t.Fatalf("GenerateFeasible: %v", err)
		}
		writesAt := func(iters int) (int64, int) {
			sol, err := Solve(p, EngineCrossbar, WithSeed(2), WithMaxIterations(iters))
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			return sol.Hardware.CellWrites, sol.Iterations
		}
		w1, i1 := writesAt(5)
		w2, i2 := writesAt(25)
		if i2 <= i1 {
			t.Fatalf("iteration budgets not respected: %d vs %d", i1, i2)
		}
		return float64(w2-w1) / float64(i2-i1)
	}
	w12 := perIterationWrites(12)
	w48 := perIterationWrites(48)
	ratio := w48 / w12
	if ratio < 2.5 || ratio > 7 {
		t.Errorf("per-iteration writes scaled by %.2f for 4x size; want ≈4 (O(N))", ratio)
	}
}

// TestNoCAndSingleCrossbarAgree runs the same seeded problem on a single
// crossbar and on a mesh-tiled fabric; both must land within the analog
// accuracy floor of the reference.
func TestNoCAndSingleCrossbarAgree(t *testing.T) {
	p, err := GenerateFeasible(12, 0, 21)
	if err != nil {
		t.Fatalf("GenerateFeasible: %v", err)
	}
	ref, err := Solve(p, EnginePDIPReduced)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	single, err := Solve(p, EngineCrossbar, WithSeed(4))
	if err != nil {
		t.Fatalf("single: %v", err)
	}
	tiled, err := Solve(p, EngineCrossbar, WithSeed(4), WithNoC("mesh", 16))
	if err != nil {
		t.Fatalf("tiled: %v", err)
	}
	for name, sol := range map[string]*Solution{"single": single, "mesh-tiled": tiled} {
		if sol.Status != StatusOptimal {
			t.Errorf("%s: status %v", name, sol.Status)
			continue
		}
		if rel := math.Abs(sol.Objective-ref.Objective) / (1 + math.Abs(ref.Objective)); rel > 0.05 {
			t.Errorf("%s: objective %v vs %v", name, sol.Objective, ref.Objective)
		}
	}
}

// TestInfeasibleEndToEnd drives infeasibility detection through the public
// API on all PDIP engines.
func TestInfeasibleEndToEnd(t *testing.T) {
	p, err := GenerateInfeasible(12, 0, 31)
	if err != nil {
		t.Fatalf("GenerateInfeasible: %v", err)
	}
	for _, e := range []Engine{EnginePDIP, EnginePDIPReduced, EngineSimplex} {
		sol, err := Solve(p, e)
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if sol.Status != StatusInfeasible {
			t.Errorf("%v: status %v, want infeasible", e, sol.Status)
		}
	}
	// Crossbar engines may report infeasible directly or reject via the
	// α-check; they must never claim optimal.
	for _, e := range []Engine{EngineCrossbar, EngineCrossbarLargeScale} {
		sol, err := Solve(p, e, WithSeed(1))
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if sol.Status == StatusOptimal {
			t.Errorf("%v: infeasible problem reported optimal", e)
		}
	}
}

// TestVariationMonotonicity spot-checks the Fig. 5 trend through the public
// API: averaged over seeds, more variation must not give radically better
// accuracy (noise floors make exact monotonicity too strict to assert).
func TestVariationMonotonicity(t *testing.T) {
	meanErr := func(varPct float64) float64 {
		var sum float64
		const trials = 4
		for seed := int64(0); seed < trials; seed++ {
			p, err := GenerateFeasible(12, 0, 60+seed)
			if err != nil {
				t.Fatalf("GenerateFeasible: %v", err)
			}
			ref, err := Solve(p, EnginePDIPReduced)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			sol, err := Solve(p, EngineCrossbar, WithVariation(varPct), WithSeed(100+seed))
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			sum += math.Abs(sol.Objective-ref.Objective) / (1 + math.Abs(ref.Objective))
		}
		return sum / trials
	}
	e0 := meanErr(0)
	e20 := meanErr(0.20)
	if e20 < e0/2 {
		t.Errorf("20%% variation error (%v) implausibly below no-variation error (%v)", e20, e0)
	}
	if e20 > 0.25 {
		t.Errorf("20%% variation error %v far above the paper's ≤10%% band", e20)
	}
}
