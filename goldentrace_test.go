package memlp

// Golden-trace regression suite (DESIGN.md D13): canonical LPs at fixed
// seeds are solved with tracing on and the full iteration trajectory is
// compared field-by-field against checked-in JSONL goldens under
// testdata/traces/. Any drift in the convergence path — a different θ
// schedule, a perturbed noise-epoch derivation, a changed residual — fails
// with a readable per-field diff instead of a silent behavior change.
//
// Regenerate the goldens after an intentional algorithm change with
//
//	make bless-traces
//
// (equivalently: go test . -run TestGoldenTraces -args -bless-traces) and
// review the resulting JSONL diff like any other code change. On mismatch
// the got-trace is written to trace-diffs/<name>.jsonl so CI can upload it
// as an artifact.

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/memlp/memlp/internal/trace"
)

var blessTraces = flag.Bool("bless-traces", false,
	"rewrite testdata/traces/*.jsonl goldens from the current solver output")

const (
	goldenTraceDir = "testdata/traces"
	traceDiffDir   = "trace-diffs"
	// goldenTraceTol is the comparison tolerance for float fields. The
	// solves are seeded and deterministic, so the tolerance only has to
	// absorb cross-platform libm differences, not algorithmic drift.
	goldenTraceTol = 1e-9
)

// dietLP is the canonical textbook instance used across engines:
// maximize 3x₁+2x₂ subject to x₁+x₂ ≤ 4, x₁+3x₂ ≤ 6 (optimum 12 at (4,0)).
func dietLP(t testing.TB) *Problem {
	t.Helper()
	p, err := NewProblem("diet", []float64{3, 2}, [][]float64{{1, 1}, {1, 3}}, []float64{4, 6})
	if err != nil {
		t.Fatalf("diet problem: %v", err)
	}
	return p
}

func feasibleLP(t testing.TB, m int, seed int64) *Problem {
	t.Helper()
	p, err := GenerateFeasible(m, 0, seed)
	if err != nil {
		t.Fatalf("GenerateFeasible(%d, %d): %v", m, seed, err)
	}
	return p
}

// portfolioSOCP is the portfolio fixture from conic_test.go, reused as a
// pinned conic trajectory.
func portfolioSOCP(t testing.TB) *Problem {
	tt, ok := t.(*testing.T)
	if !ok {
		t.Fatal("portfolioSOCP needs *testing.T")
	}
	return portfolioProblem(tt)
}

func feasibleSOCP(t testing.TB, m, blocks, blockDim int, seed int64) *Problem {
	t.Helper()
	p, err := GenerateFeasibleSOCP(m, 0, blocks, blockDim, seed)
	if err != nil {
		t.Fatalf("GenerateFeasibleSOCP(%d, %d): %v", m, seed, err)
	}
	return p
}

// goldenTraceCase is one pinned scenario: a solver configuration plus the
// problem(s) it solves. Batch cases concatenate the per-problem traces in
// input order, which the pool guarantees is pool-width independent.
type goldenTraceCase struct {
	name     string
	engine   Engine
	opts     []Option
	problems func(t testing.TB) []*Problem
	batch    bool
}

func single(f func(t testing.TB) *Problem) func(t testing.TB) []*Problem {
	return func(t testing.TB) []*Problem { return []*Problem{f(t)} }
}

func goldenTraceCases() []goldenTraceCase {
	noisy := []Option{WithVariation(0.05), WithCycleNoise(0.25)}
	return []goldenTraceCase{
		// Algorithm 1 on the crossbar, under full stochastic hardware.
		{name: "crossbar-diet", engine: EngineCrossbar,
			opts:     append([]Option{WithSeed(7)}, noisy...),
			problems: single(dietLP)},
		{name: "crossbar-gen8", engine: EngineCrossbar,
			opts:     append([]Option{WithSeed(3)}, noisy...),
			problems: single(func(t testing.TB) *Problem { return feasibleLP(t, 8, 11) })},
		{name: "crossbar-gen12", engine: EngineCrossbar,
			opts:     []Option{WithSeed(5), WithVariation(0.08), WithCycleNoise(0.5)},
			problems: single(func(t testing.TB) *Problem { return feasibleLP(t, 12, 29) })},
		// Algorithm 2 (two small systems, constant θ).
		{name: "largescale-diet", engine: EngineCrossbarLargeScale,
			opts:     append([]Option{WithSeed(7)}, noisy...),
			problems: single(dietLP)},
		{name: "largescale-gen10", engine: EngineCrossbarLargeScale,
			opts:     []Option{WithSeed(23)},
			problems: single(func(t testing.TB) *Problem { return feasibleLP(t, 10, 17) })},
		{name: "largescale-gen16", engine: EngineCrossbarLargeScale,
			opts:     append([]Option{WithSeed(2)}, noisy...),
			problems: single(func(t testing.TB) *Problem { return feasibleLP(t, 16, 41) })},
		// Simplex pivot trajectories.
		{name: "simplex-diet", engine: EngineSimplex, problems: single(dietLP)},
		{name: "simplex-gen6", engine: EngineSimplex,
			problems: single(func(t testing.TB) *Problem { return feasibleLP(t, 6, 19) })},
		{name: "simplex-gen9", engine: EngineSimplex,
			problems: single(func(t testing.TB) *Problem { return feasibleLP(t, 9, 31) })},
		// Conic engine: SOCP trajectories, pinning the Nesterov–Todd block
		// refresh path and the cone-residual field under stochastic hardware.
		{name: "conic-portfolio", engine: EngineConic,
			opts:     append([]Option{WithSeed(9)}, noisy...),
			problems: single(portfolioSOCP)},
		{name: "conic-gen12", engine: EngineConic,
			opts:     []Option{WithSeed(15), WithVariation(0.08), WithCycleNoise(0.5)},
			problems: single(func(t testing.TB) *Problem { return feasibleSOCP(t, 12, 2, 3, 43) })},
		// Restarted PDHG on the tiled fabric. The clean-hardware case pins the
		// monitored-KKT decimation and the digital confirmation point; the
		// noisy tiled case pins the (block, slot) noise-epoch derivation, the
		// adaptive-restart events, and the refresh accounting across a 2x2
		// worker grid (grid choice must not — and does not — affect the trace).
		{name: "pdhg-diet", engine: EnginePDHG,
			opts:     []Option{WithSeed(7)},
			problems: single(dietLP)},
		{name: "pdhg-gen12-tiled", engine: EnginePDHG,
			opts: []Option{WithSeed(5), WithVariation(0.05), WithCycleNoise(0.25),
				WithNoC("mesh", 4), WithTiles(2), WithMaxIterations(600)},
			problems: single(func(t testing.TB) *Problem { return feasibleLP(t, 12, 29) })},
		// A sharded batch: three instances on a two-replica pool. The golden
		// pins the per-problem noise epochs and the input-order aggregation.
		{name: "crossbar-batch", engine: EngineCrossbar, batch: true,
			opts: []Option{WithParallelism(2), WithSeed(13), WithVariation(0.08), WithCycleNoise(0.5)},
			problems: func(t testing.TB) []*Problem {
				return poolBatch(t, 3, 8, 21)
			}},
	}
}

// runGoldenCase solves the case's problems with tracing on and returns the
// concatenated trace in input order.
func runGoldenCase(t testing.TB, gc goldenTraceCase) []trace.Record {
	t.Helper()
	opts := append([]Option{WithTrace(0)}, gc.opts...)
	s, err := NewSolver(gc.engine, opts...)
	if err != nil {
		t.Fatalf("NewSolver(%s): %v", gc.name, err)
	}
	problems := gc.problems(t)
	var sols []*Solution
	if gc.batch {
		sols, err = s.SolveBatch(context.Background(), problems)
	} else {
		var sol *Solution
		sol, err = s.Solve(context.Background(), problems[0])
		sols = []*Solution{sol}
	}
	if err != nil {
		t.Fatalf("solve %s: %v", gc.name, err)
	}
	var recs []trace.Record
	for _, sol := range sols {
		for _, r := range sol.Trace() {
			recs = append(recs, trace.Record(r))
		}
	}
	if len(recs) == 0 {
		t.Fatalf("solve %s produced an empty trace", gc.name)
	}
	return recs
}

func goldenTracePath(name string) string {
	return filepath.Join(goldenTraceDir, name+".jsonl")
}

func readGoldenTrace(t *testing.T, name string) []trace.Record {
	t.Helper()
	f, err := os.Open(goldenTracePath(name))
	if err != nil {
		t.Fatalf("missing golden %s (run `make bless-traces`): %v", name, err)
	}
	defer f.Close()
	recs, err := trace.Read(f)
	if err != nil {
		t.Fatalf("golden %s is corrupt: %v", name, err)
	}
	return recs
}

func blessGoldenTrace(t *testing.T, name string, recs []trace.Record) {
	t.Helper()
	if err := os.MkdirAll(goldenTraceDir, 0o755); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, recs); err != nil {
		t.Fatalf("serialize %s: %v", name, err)
	}
	if err := os.WriteFile(goldenTracePath(name), buf.Bytes(), 0o644); err != nil {
		t.Fatalf("write golden %s: %v", name, err)
	}
	t.Logf("blessed %s (%d records)", goldenTracePath(name), len(recs))
}

// dumpGotTrace preserves a diverging trace for post-mortem (CI uploads the
// directory as an artifact).
func dumpGotTrace(t *testing.T, name string, recs []trace.Record) {
	t.Helper()
	if err := os.MkdirAll(traceDiffDir, 0o755); err != nil {
		t.Logf("cannot create %s: %v", traceDiffDir, err)
		return
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, recs); err != nil {
		t.Logf("cannot serialize got-trace: %v", err)
		return
	}
	path := filepath.Join(traceDiffDir, name+".jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Logf("cannot write %s: %v", path, err)
		return
	}
	t.Logf("diverging trace written to %s", path)
}

// TestGoldenTraces is the regression gate: every pinned scenario's trace
// must match its golden field-by-field. With -bless-traces (via
// `make bless-traces`) it rewrites the goldens instead.
func TestGoldenTraces(t *testing.T) {
	for _, gc := range goldenTraceCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			got := runGoldenCase(t, gc)
			if *blessTraces {
				blessGoldenTrace(t, gc.name, got)
				return
			}
			want := readGoldenTrace(t, gc.name)
			if diff := trace.Diff(got, want, goldenTraceTol); len(diff) != 0 {
				dumpGotTrace(t, gc.name, got)
				t.Errorf("trace diverged from golden %s:\n  %s",
					goldenTracePath(gc.name), strings.Join(diff, "\n  "))
			}
		})
	}
}

// TestGoldenTraceRoundTrip pins that the golden serialization itself is
// lossless: re-encoding a parsed golden reproduces the file byte-for-byte,
// so bless runs are deterministic and `git diff` on goldens is meaningful.
func TestGoldenTraceRoundTrip(t *testing.T) {
	for _, gc := range goldenTraceCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			raw, err := os.ReadFile(goldenTracePath(gc.name))
			if err != nil {
				t.Skipf("golden not present: %v", err)
			}
			recs, err := trace.Read(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("parse golden: %v", err)
			}
			var buf bytes.Buffer
			if err := trace.Write(&buf, recs); err != nil {
				t.Fatalf("re-encode golden: %v", err)
			}
			if !bytes.Equal(raw, buf.Bytes()) {
				t.Error("golden JSONL does not round-trip byte-identically")
			}
		})
	}
}

// TestGoldenTraceBlessDeterministic pins the acceptance requirement that
// regeneration is reproducible: two independent solver handles produce
// byte-identical serialized traces for the same pinned case.
func TestGoldenTraceBlessDeterministic(t *testing.T) {
	for _, name := range []string{"crossbar-gen8", "largescale-gen10", "crossbar-batch"} {
		var gc goldenTraceCase
		for _, c := range goldenTraceCases() {
			if c.name == name {
				gc = c
			}
		}
		t.Run(name, func(t *testing.T) {
			var first []byte
			for run := 0; run < 2; run++ {
				var buf bytes.Buffer
				if err := trace.Write(&buf, runGoldenCase(t, gc)); err != nil {
					t.Fatal(err)
				}
				if run == 0 {
					first = append([]byte(nil), buf.Bytes()...)
				} else if !bytes.Equal(first, buf.Bytes()) {
					t.Error("two bless runs of the same case produced different bytes")
				}
			}
		})
	}
}

// TestGoldenTraceCatchesThetaPerturbation proves the suite's sensitivity:
// changing Algorithm 2's constant step from the default 0.2 to 0.25 must
// fail against the golden with a diff that names the theta field.
func TestGoldenTraceCatchesThetaPerturbation(t *testing.T) {
	gc := goldenTraceCase{
		name:   "largescale-diet",
		engine: EngineCrossbarLargeScale,
		opts: []Option{WithSeed(7), WithVariation(0.05), WithCycleNoise(0.25),
			WithConstantStep(0.25)},
		problems: single(dietLP),
	}
	got := runGoldenCase(t, gc)
	want := readGoldenTrace(t, "largescale-diet")
	diff := trace.Diff(got, want, goldenTraceTol)
	if len(diff) == 0 {
		t.Fatal("perturbing θ left the trace identical to the golden")
	}
	if !strings.Contains(strings.Join(diff, "\n"), "theta") {
		t.Errorf("θ perturbation diff does not name the theta field:\n%s",
			strings.Join(diff, "\n"))
	}
}

// TestGoldenTraceCatchesSeedPerturbation: a different hardware seed draws a
// different noise stream, so the recorded convergence path must diverge.
func TestGoldenTraceCatchesSeedPerturbation(t *testing.T) {
	gc := goldenTraceCase{
		name:     "crossbar-gen8",
		engine:   EngineCrossbar,
		opts:     []Option{WithSeed(4), WithVariation(0.05), WithCycleNoise(0.25)},
		problems: single(func(t testing.TB) *Problem { return feasibleLP(t, 8, 11) }),
	}
	got := runGoldenCase(t, gc)
	want := readGoldenTrace(t, "crossbar-gen8")
	if diff := trace.Diff(got, want, goldenTraceTol); len(diff) == 0 {
		t.Fatal("perturbing the hardware seed left the trace identical to the golden")
	}
}

// TestGoldenTraceCatchesNoiseEpochPerturbation: the batch golden pins one
// noise epoch per problem index. A perturbed derivation (modeled here by
// shifting every recorded epoch) must produce a diff naming noise_epoch —
// the field-level failure mode the determinism contract relies on.
func TestGoldenTraceCatchesNoiseEpochPerturbation(t *testing.T) {
	want := readGoldenTrace(t, "crossbar-batch")
	got := make([]trace.Record, len(want))
	copy(got, want)
	for i := range got {
		got[i].NoiseEpoch++
	}
	diff := trace.Diff(got, want, goldenTraceTol)
	if len(diff) == 0 {
		t.Fatal("shifted noise epochs left the diff empty")
	}
	if !strings.Contains(strings.Join(diff, "\n"), "noise_epoch") {
		t.Errorf("noise-epoch perturbation diff does not name the field:\n%s",
			strings.Join(diff, "\n"))
	}
}
