GO ?= go
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: all build test race lint vet memlpvet vuln cover bench-batch bench-trace bench-serve bench-hotpath bench-pdhg bless-traces

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# The domain-specific invariant suite (floatcmp, ctxloop, rawwrite, nanguard,
# hotpath — see DESIGN.md D11). Also runnable through go vet's cache:
#   $(GO) build -o memlpvet ./cmd/memlpvet && $(GO) vet -vettool=$$PWD/memlpvet ./...
memlpvet:
	$(GO) run ./cmd/memlpvet ./...

# golangci-lint is optional locally; vet + memlpvet are the required floor.
lint: vet memlpvet
	@if command -v golangci-lint >/dev/null 2>&1; then \
		golangci-lint run; \
	else \
		echo "golangci-lint not installed; ran go vet + memlpvet only"; \
	fi

# Pinned so CI results are reproducible; requires network access.
vuln:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

cover:
	$(GO) test -coverprofile=cover.out -coverpkg=./... ./...
	$(GO) tool cover -func=cover.out | tail -1

# Fabric-pool throughput benchmarks (the BENCH_BATCH.json source). Raise
# -benchtime for tighter numbers on a quiet machine.
bench-batch:
	$(GO) test . ./internal/core/ ./internal/linalg/ -run '^$$' \
		-bench 'BenchmarkBatchParallel|BenchmarkBatchValidation|BenchmarkSolveStructuredPDIPShape' \
		-benchtime 3x -benchmem

# Serving throughput (the BENCH_SERVE.json source): 8 closed-loop clients
# against an in-process memlpd, same-matrix coalescing off vs on. Wall
# req/s is core-count-bound; the amortization columns are the stable signal.
bench-serve:
	$(GO) run ./cmd/benchtables -table serve -sizes 16,24 -vars 0 \
		-serve-clients 8 -serve-requests 8 -serve-window 5ms \
		-serve-json BENCH_SERVE.json

# Trace-recording overhead (the BENCH_TRACE.json source): the same solve
# with and without the ring-sink recorder.
bench-trace:
	$(GO) test . -run '^$$' \
		-bench 'BenchmarkSolveTraced|BenchmarkSolveUntraced' \
		-benchtime 50x -benchmem

# Hot-path benchmarks (the BENCH_HOTPATH.json source): delta-programming
# cell-write savings, warm-started repeat solves, and the structured LDL^T
# versus dense LU on the reduced KKT system.
bench-hotpath:
	$(GO) test . ./internal/linalg/ -run '^$$' \
		-bench 'BenchmarkDeltaWrites|BenchmarkWarmStart|BenchmarkLDLT|BenchmarkLUKKT' \
		-benchtime 20x -benchmem

# Tiled-PDHG worker-grid benchmarks (the BENCH_PDHG.json source): one
# 24x18 solve on a 3x3 block grid of 8-wide crossbars at worker grids of
# 1, 4, and 16 goroutines. Results are bit-identical across grids; the
# sweep overhead is the measured signal.
bench-pdhg:
	$(GO) test . -run '^$$' -bench 'BenchmarkPDHGTiles' \
		-benchtime 20x -benchmem

# Regenerate the golden iteration traces under testdata/traces/ from the
# current solver output (DESIGN.md D13). Review the JSONL diff like any
# other code change before committing.
bless-traces:
	$(GO) test . -run 'TestGoldenTraces$$' -args -bless-traces
