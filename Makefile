GO ?= go
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: all build test race lint vet memlpvet vuln cover bench-batch

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# The domain-specific invariant suite (floatcmp, ctxloop, rawwrite, nanguard,
# hotpath — see DESIGN.md D11). Also runnable through go vet's cache:
#   $(GO) build -o memlpvet ./cmd/memlpvet && $(GO) vet -vettool=$$PWD/memlpvet ./...
memlpvet:
	$(GO) run ./cmd/memlpvet ./...

# golangci-lint is optional locally; vet + memlpvet are the required floor.
lint: vet memlpvet
	@if command -v golangci-lint >/dev/null 2>&1; then \
		golangci-lint run; \
	else \
		echo "golangci-lint not installed; ran go vet + memlpvet only"; \
	fi

# Pinned so CI results are reproducible; requires network access.
vuln:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

cover:
	$(GO) test -coverprofile=cover.out -coverpkg=./... ./...
	$(GO) tool cover -func=cover.out | tail -1

# Fabric-pool throughput benchmarks (the BENCH_BATCH.json source). Raise
# -benchtime for tighter numbers on a quiet machine.
bench-batch:
	$(GO) test . ./internal/core/ ./internal/linalg/ -run '^$$' \
		-bench 'BenchmarkBatchParallel|BenchmarkBatchValidation|BenchmarkSolveStructuredPDIPShape' \
		-benchtime 3x -benchmem
