package memlp

// Fuzz target for the validation and solve pipeline: arbitrary byte soup is
// decoded into problem data (naturally producing NaN/Inf coefficients, zero
// dimensions, m > n shapes, and rank-deficient matrices) and fed through
// NewProblem and every fast engine. The contract under fuzzing is strict:
// malformed inputs fail with errors matching ErrInvalid, solvable inputs
// return a Solution with a meaningful Status — and nothing ever panics.
//
// Run locally with: go test -fuzz=FuzzSolve -fuzztime=30s .
// The seed corpus lives in testdata/fuzz/FuzzSolve.

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"
)

// fuzzValues decodes count float64s from payload (little-endian, cycling
// from the start when the payload runs short; an empty payload yields ones).
func fuzzValues(payload []byte, count int) []float64 {
	vals := make([]float64, count)
	if len(payload) < 8 {
		for i := range vals {
			vals[i] = 1
		}
		return vals
	}
	pos := 0
	for i := range vals {
		if pos+8 > len(payload) {
			pos = 0
		}
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[pos : pos+8]))
		pos += 8
	}
	return vals
}

func FuzzSolve(f *testing.F) {
	le := func(v float64) []byte {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		return b[:]
	}
	// Well-formed 2x2, NaN data, +Inf data, zero dimensions, m > n, and a
	// rank-deficient repeating payload.
	f.Add(2, 2, append(append(le(1), le(2)...), le(3)...))
	f.Add(3, 3, le(math.NaN()))
	f.Add(2, 2, le(math.Inf(1)))
	f.Add(0, 4, []byte{})
	f.Add(8, 2, le(1.5))
	f.Add(4, 4, le(2))

	f.Fuzz(func(t *testing.T, mRaw, nRaw int, payload []byte) {
		m := mRaw % 9
		n := nRaw % 9
		if m < 0 {
			m = -m
		}
		if n < 0 {
			n = -n
		}
		vals := fuzzValues(payload, m*n+m+n)
		c := vals[:n]
		b := vals[n : n+m]
		rows := make([][]float64, m)
		for i := 0; i < m; i++ {
			rows[i] = vals[n+m+i*n : n+m+(i+1)*n]
		}

		p, err := NewProblem("fuzz", c, rows, b)
		if err != nil {
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("NewProblem error not typed ErrInvalid: %v", err)
			}
			return
		}

		for _, eng := range []Engine{EnginePDIPReduced, EngineSimplex, EngineCrossbar, EnginePDHG} {
			var opts []Option
			if eng != EngineSimplex {
				opts = append(opts, WithMaxIterations(40))
			}
			sol, err := Solve(p, eng, opts...)
			if err != nil {
				continue // honest failure; only panics and lies are bugs
			}
			if sol == nil {
				t.Fatalf("%v: nil solution and nil error", eng)
			}
			switch sol.Status {
			case StatusOptimal, StatusInfeasible, StatusUnbounded,
				StatusIterationLimit, StatusNumericalFailure,
				StatusCanceled, StatusDegraded:
			default:
				t.Fatalf("%v: unknown status %d", eng, int(sol.Status))
			}
			if sol.Status == StatusOptimal {
				if math.IsNaN(sol.Objective) {
					t.Fatalf("%v: optimal with NaN objective", eng)
				}
				for _, x := range sol.X {
					if math.IsNaN(x) {
						t.Fatalf("%v: optimal with NaN solution entry", eng)
					}
				}
			}
		}
	})
}
