package memlp

// Tests for the public warm-start surface: the WithWarmStart option, the
// Solver.SetWarmStart method, per-engine compatibility, edge cases around
// degraded or mismatched previous solutions, and the bit-identity contract
// for warm-started pooled batches.

import (
	"context"
	"errors"
	"math"
	"testing"
)

// TestWithWarmStartEngineCompatibility: the option must be rejected at
// construction for engines with no interior iterate to seed, and the method
// must report ErrIncompatibleOption for the same engines.
func TestWithWarmStartEngineCompatibility(t *testing.T) {
	prev := &Solution{X: []float64{1}, DualY: []float64{1}}
	for _, eng := range []Engine{EngineSimplex, EngineCrossbarLargeScale} {
		if _, err := NewSolver(eng, WithWarmStart(prev)); !errors.Is(err, ErrIncompatibleOption) {
			t.Errorf("%s with WithWarmStart: err = %v, want ErrIncompatibleOption", eng, err)
		}
		s, err := NewSolver(eng)
		if err != nil {
			t.Fatalf("NewSolver(%s): %v", eng, err)
		}
		if err := s.SetWarmStart(prev); !errors.Is(err, ErrIncompatibleOption) {
			t.Errorf("%s SetWarmStart: err = %v, want ErrIncompatibleOption", eng, err)
		}
	}
	for _, eng := range []Engine{EngineCrossbar, EngineConic, EnginePDIP, EnginePDIPReduced} {
		if _, err := NewSolver(eng, WithWarmStart(prev)); err != nil {
			t.Errorf("%s with WithWarmStart: %v", eng, err)
		}
	}
}

// TestWithWarmStartValidation covers the option's own argument checks and the
// method's nil-clears contract.
func TestWithWarmStartValidation(t *testing.T) {
	if _, err := NewSolver(EngineCrossbar, WithWarmStart(nil)); !errors.Is(err, ErrInvalid) {
		t.Errorf("WithWarmStart(nil): err = %v, want ErrInvalid", err)
	}
	if _, err := NewSolver(EngineCrossbar, WithWarmStart(&Solution{X: []float64{1}})); !errors.Is(err, ErrInvalid) {
		t.Errorf("WithWarmStart(no DualY): err = %v, want ErrInvalid", err)
	}
	s, err := NewSolver(EngineCrossbar)
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	if err := s.SetWarmStart(&Solution{DualY: []float64{1}}); !errors.Is(err, ErrInvalid) {
		t.Errorf("SetWarmStart(no X): err = %v, want ErrInvalid", err)
	}
	if err := s.SetWarmStart(nil); err != nil {
		t.Errorf("SetWarmStart(nil) should clear, got %v", err)
	}
}

// TestWarmStartRepeatSolve: the headline hot-path behavior — re-solving a
// problem seeded from its own solution stays optimal and takes no more
// iterations than the cold solve, on every warm-capable engine.
func TestWarmStartRepeatSolve(t *testing.T) {
	prob, err := GenerateFeasible(12, 0, 17)
	if err != nil {
		t.Fatalf("GenerateFeasible: %v", err)
	}
	ctx := context.Background()
	for _, eng := range []Engine{EngineCrossbar, EnginePDIP, EnginePDIPReduced} {
		var opts []Option
		if eng == EngineCrossbar {
			opts = append(opts, WithSeed(3))
		}
		s, err := NewSolver(eng, opts...)
		if err != nil {
			t.Fatalf("NewSolver(%s): %v", eng, err)
		}
		cold, err := s.Solve(ctx, prob)
		if err != nil {
			t.Fatalf("%s cold Solve: %v", eng, err)
		}
		if cold.Status != StatusOptimal {
			t.Fatalf("%s cold status = %v, want optimal", eng, cold.Status)
		}
		if err := s.SetWarmStart(cold); err != nil {
			t.Fatalf("%s SetWarmStart: %v", eng, err)
		}
		warm, err := s.Solve(ctx, prob)
		if err != nil {
			t.Fatalf("%s warm Solve: %v", eng, err)
		}
		if warm.Status != StatusOptimal {
			t.Fatalf("%s warm status = %v, want optimal", eng, warm.Status)
		}
		if warm.Iterations > cold.Iterations {
			t.Errorf("%s: warm solve took %d iterations, cold took %d",
				eng, warm.Iterations, cold.Iterations)
		}
		// The analog engine re-quantizes the fabric each solve, so warm and
		// cold optima agree to hardware precision, not to float precision.
		if math.Abs(warm.Objective-cold.Objective) > 1e-2*(1+math.Abs(cold.Objective)) {
			t.Errorf("%s: warm objective %v, cold %v", eng, warm.Objective, cold.Objective)
		}
	}
}

// TestWarmStartMismatchedDimensions: a previous solution from a
// different-shaped problem must fail the solve with ErrInvalid.
func TestWarmStartMismatchedDimensions(t *testing.T) {
	small, err := GenerateFeasible(6, 0, 1)
	if err != nil {
		t.Fatalf("GenerateFeasible(small): %v", err)
	}
	big, err := GenerateFeasible(14, 0, 2)
	if err != nil {
		t.Fatalf("GenerateFeasible(big): %v", err)
	}
	ctx := context.Background()
	s, err := NewSolver(EngineCrossbar)
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	prev, err := s.Solve(ctx, small)
	if err != nil {
		t.Fatalf("Solve(small): %v", err)
	}
	if err := s.SetWarmStart(prev); err != nil {
		t.Fatalf("SetWarmStart: %v", err)
	}
	if _, err := s.Solve(ctx, big); !errors.Is(err, ErrInvalid) {
		t.Fatalf("warm solve with mismatched dims: err = %v, want ErrInvalid", err)
	}
	if err := s.SetWarmStart(nil); err != nil {
		t.Fatalf("SetWarmStart(nil): %v", err)
	}
	if sol, err := s.Solve(ctx, big); err != nil || sol.Status != StatusOptimal {
		t.Fatalf("Solve after clear: sol=%v err=%v", sol, err)
	}
}

// TestWarmStartDegradedPrevious: warm vectors polluted by NaN (a degraded or
// failed previous attempt) must silently fall back to the cold trajectory.
func TestWarmStartDegradedPrevious(t *testing.T) {
	prob, err := GenerateFeasible(10, 0, 9)
	if err != nil {
		t.Fatalf("GenerateFeasible: %v", err)
	}
	ctx := context.Background()
	s, err := NewSolver(EngineCrossbar, WithSeed(4))
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	cold, err := s.Solve(ctx, prob)
	if err != nil {
		t.Fatalf("cold Solve: %v", err)
	}
	bad := &Solution{
		X:     make([]float64, prob.NumVariables()),
		DualY: make([]float64, prob.NumConstraints()),
	}
	for i := range bad.X {
		bad.X[i] = 1
	}
	bad.X[0] = math.NaN()
	for i := range bad.DualY {
		bad.DualY[i] = 1
	}
	if err := s.SetWarmStart(bad); err != nil {
		t.Fatalf("SetWarmStart: %v", err)
	}
	warm, err := s.Solve(ctx, prob)
	if err != nil {
		t.Fatalf("warm Solve: %v", err)
	}
	if warm.Status != cold.Status || warm.Iterations != cold.Iterations || warm.Objective != cold.Objective {
		t.Errorf("degraded warm start changed the trajectory: %v/%d/%v, cold %v/%d/%v",
			warm.Status, warm.Iterations, warm.Objective, cold.Status, cold.Iterations, cold.Objective)
	}
}

// TestWarmStartConicSolve: warm-starting the conic engine re-enters through
// the interior clamp and still reaches the cone-constrained optimum.
func TestWarmStartConicSolve(t *testing.T) {
	rows := [][]float64{
		{1, 1},
		{0, 0},
		{1, 0},
		{0, 1},
	}
	prob, err := NewConicProblem("warm-socp", []float64{1, 1}, rows, []float64{5, 3, 0, 0},
		[]Cone{{Type: ConeNonNeg, Dim: 1}, {Type: ConeSOC, Dim: 3}})
	if err != nil {
		t.Fatalf("NewConicProblem: %v", err)
	}
	ctx := context.Background()
	s, err := NewSolver(EngineConic)
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	cold, err := s.Solve(ctx, prob)
	if err != nil {
		t.Fatalf("cold Solve: %v", err)
	}
	if cold.Status != StatusOptimal {
		t.Fatalf("cold status = %v, want optimal", cold.Status)
	}
	if err := s.SetWarmStart(cold); err != nil {
		t.Fatalf("SetWarmStart: %v", err)
	}
	warm, err := s.Solve(ctx, prob)
	if err != nil {
		t.Fatalf("warm Solve: %v", err)
	}
	if warm.Status != StatusOptimal {
		t.Fatalf("warm status = %v, want optimal", warm.Status)
	}
	want := 3 * math.Sqrt2
	if math.Abs(warm.Objective-want) > 5e-3*(1+want) {
		t.Errorf("warm objective = %v, want %v", warm.Objective, want)
	}
}

// TestWarmStartBatchBitIdenticalAcrossWidths extends the public pool
// determinism contract to warm-started batches under full stochastic
// hardware: variation, cycle noise, delta programming, and a warm seed must
// still produce bit-identical Solutions at every width.
func TestWarmStartBatchBitIdenticalAcrossWidths(t *testing.T) {
	problems := poolBatch(t, 8, 10, 33)
	ctx := context.Background()

	seedSolver, err := NewSolver(EngineCrossbar,
		WithVariation(0.08), WithCycleNoise(0.5), WithSeed(13))
	if err != nil {
		t.Fatalf("NewSolver(seed): %v", err)
	}
	prior, err := seedSolver.Solve(ctx, problems[0])
	if err != nil {
		t.Fatalf("seed Solve: %v", err)
	}

	var ref []*Solution
	for _, par := range []int{1, 2, 8} {
		s, err := NewSolver(EngineCrossbar,
			WithParallelism(par), WithVariation(0.08), WithCycleNoise(0.5), WithSeed(13))
		if err != nil {
			t.Fatalf("NewSolver(par=%d): %v", par, err)
		}
		if err := s.SetWarmStart(prior); err != nil {
			t.Fatalf("SetWarmStart(par=%d): %v", par, err)
		}
		sols, err := s.SolveBatch(ctx, problems)
		if err != nil {
			t.Fatalf("SolveBatch(par=%d): %v", par, err)
		}
		if ref == nil {
			ref = sols
			continue
		}
		for i, sol := range sols {
			want := ref[i]
			if sol.Status != want.Status || sol.Iterations != want.Iterations {
				t.Errorf("par=%d problem %d: %v/%d, want %v/%d",
					par, i, sol.Status, sol.Iterations, want.Status, want.Iterations)
			}
			if sol.Objective != want.Objective {
				t.Errorf("par=%d problem %d: objective %v, want bit-identical %v", par, i, sol.Objective, want.Objective)
			}
			for j := range want.X {
				if sol.X[j] != want.X[j] {
					t.Fatalf("par=%d problem %d: X[%d] = %v, want bit-identical %v", par, i, j, sol.X[j], want.X[j])
				}
			}
			for j := range want.DualY {
				if sol.DualY[j] != want.DualY[j] {
					t.Fatalf("par=%d problem %d: DualY[%d] = %v, want bit-identical %v", par, i, j, sol.DualY[j], want.DualY[j])
				}
			}
		}
	}
}
