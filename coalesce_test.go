package memlp

// Tests for the serving-layer canonical-matrix primitives: fingerprint
// equality/inequality, adoption success and refusal, and the pointer-identity
// fast path adoption buys a subsequent SolveBatch.

import (
	"context"
	"fmt"
	"testing"
)

func coalesceProblems(t *testing.T, n int) []*Problem {
	t.Helper()
	a := [][]float64{{1, 1}, {1, 3}, {2, 1}}
	c := []float64{3, 2}
	out := make([]*Problem, n)
	for i := range out {
		b := []float64{4 + float64(i), 6, 5}
		p, err := NewProblem(fmt.Sprintf("p%d", i), c, a, b)
		if err != nil {
			t.Fatalf("NewProblem: %v", err)
		}
		out[i] = p
	}
	return out
}

func TestMatrixFingerprint(t *testing.T) {
	ps := coalesceProblems(t, 2)
	if ps[0].MatrixFingerprint() != ps[1].MatrixFingerprint() {
		t.Error("equal matrices produced different fingerprints")
	}

	other, err := NewProblem("other", []float64{3, 2},
		[][]float64{{1, 1}, {1, 3.0000001}, {2, 1}}, []float64{4, 6, 5})
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	if other.MatrixFingerprint() == ps[0].MatrixFingerprint() {
		t.Error("different matrices produced the same fingerprint")
	}

	// Shape must contribute: a 2x3 and a 3x2 with the same element stream
	// must not collide.
	wide, err := NewProblem("wide", []float64{1, 1, 1},
		[][]float64{{1, 1, 1}, {3, 2, 1}}, []float64{4, 6})
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	tall, err := NewProblem("tall", []float64{1, 1},
		[][]float64{{1, 1}, {1, 3}, {2, 1}}, []float64{4, 6, 5})
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	if wide.MatrixFingerprint() == tall.MatrixFingerprint() {
		t.Error("transposed shapes produced the same fingerprint")
	}
}

func TestAdoptMatrixOf(t *testing.T) {
	ps := coalesceProblems(t, 3)
	canon := ps[0]
	for _, p := range ps[1:] {
		if p.inner.A == canon.inner.A {
			t.Fatal("fresh problems unexpectedly share a matrix")
		}
		if !p.AdoptMatrixOf(canon) {
			t.Fatal("AdoptMatrixOf refused equal matrices")
		}
		if p.inner.A != canon.inner.A {
			t.Error("adoption did not share the canonical matrix object")
		}
		// Idempotent on an already-shared matrix.
		if !p.AdoptMatrixOf(canon) {
			t.Error("AdoptMatrixOf refused an already-adopted matrix")
		}
	}

	other, err := NewProblem("other", []float64{3, 2},
		[][]float64{{1, 1}, {1, 3}, {2, 2}}, []float64{4, 6, 5})
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	if other.AdoptMatrixOf(canon) {
		t.Error("AdoptMatrixOf accepted a different matrix")
	}
	if other.inner.A == canon.inner.A {
		t.Error("refused adoption still shared the matrix")
	}
}

// TestAdoptionEnablesBatch confirms the point of adoption: problems built
// independently (distinct matrix objects) batch successfully after adopting
// the canonical matrix, and the batch solves every member.
func TestAdoptionEnablesBatch(t *testing.T) {
	ps := coalesceProblems(t, 4)
	for _, p := range ps[1:] {
		if !p.AdoptMatrixOf(ps[0]) {
			t.Fatal("AdoptMatrixOf refused equal matrices")
		}
	}
	solver, err := NewSolver(EngineCrossbar, WithSeed(5), WithParallelism(2))
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	sols, err := solver.SolveBatch(context.Background(), ps)
	if err != nil {
		t.Fatalf("SolveBatch: %v", err)
	}
	for i, sol := range sols {
		if sol.Status != StatusOptimal {
			t.Errorf("problem %d: status %v", i, sol.Status)
		}
	}
}
