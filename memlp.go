// Package memlp is a memristor-crossbar linear-program solver: a full
// reproduction of "A low-computation-complexity, energy-efficient, and
// high-performance linear program solver based on primal dual interior point
// method using memristor crossbars" (Cai, Ren, Soundarajan, Wang).
//
// The package solves linear programs in the canonical form
//
//	maximize cᵀx  subject to  A·x ≤ b,  x ≥ 0
//
// with four interchangeable engines:
//
//   - EngineCrossbar — the paper's Algorithm 1: the full PDIP Newton system
//     reformulated for non-negative analog crossbar hardware, simulated with
//     device-level non-idealities (process variation, conductance
//     quantization, finite DAC/ADC precision).
//   - EngineCrossbarLargeScale — the paper's Algorithm 2: two much smaller
//     systems per iteration for crossbar-size-limited deployments.
//   - EnginePDIP — the software primal–dual interior-point baseline.
//   - EngineSimplex — the classic two-phase simplex baseline.
//   - EngineConic — Algorithm 1 generalized to conic problems: constraint
//     rows may be grouped into second-order cones (NewConicProblem), opening
//     SOCP workloads — portfolio optimization, robust regression — on the
//     same fabric. Pure LPs are the all-orthant degenerate case and take the
//     bit-identical LP path.
//
// Crossbar solves return hardware latency/energy estimates derived from
// counted physical operations and calibrated device constants, so the
// paper's speed-up and energy-gain experiments can be regenerated (see
// EXPERIMENTS.md and cmd/benchtables).
//
// # Quick start
//
//	p, err := memlp.NewProblem("diet",
//	    []float64{3, 2},
//	    [][]float64{{1, 1}, {1, 3}},
//	    []float64{4, 6})
//	...
//	sol, err := memlp.Solve(p, memlp.EngineCrossbar)
//	fmt.Println(sol.Status, sol.Objective, sol.Hardware.Latency)
package memlp

import (
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/lp"
)

// Errors surfaced by the public API.
var (
	// ErrInvalid reports malformed problems or options.
	ErrInvalid = lp.ErrInvalid
	// ErrUnknownEngine reports an unrecognized Engine value.
	ErrUnknownEngine = errors.New("memlp: unknown engine")
	// ErrIncompatibleOption reports an option that does not apply to the
	// selected engine — e.g. WithIOBits with a software engine, or
	// WithConstantStep outside EngineCrossbarLargeScale. It matches
	// errors.Is(err, ErrInvalid).
	ErrIncompatibleOption = fmt.Errorf("%w: option incompatible with engine", ErrInvalid)
	// ErrConicUnsupported reports a conic problem handed to an engine that
	// only solves pure LPs (everything except EngineConic, EnginePDIP and
	// EnginePDIPReduced). It matches errors.Is(err, ErrInvalid).
	ErrConicUnsupported = lp.ErrConicUnsupported
)

// Problem is a linear program: maximize Cᵀx subject to A·x ≤ B, x ≥ 0.
type Problem struct {
	inner *lp.Problem
}

// NewProblem constructs and validates a problem from row-major data.
func NewProblem(name string, c []float64, a [][]float64, b []float64) (*Problem, error) {
	mat, err := linalg.MatrixFromRows(a)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	cv := make(linalg.Vector, len(c))
	copy(cv, c)
	bv := make(linalg.Vector, len(b))
	copy(bv, b)
	inner, err := lp.New(name, cv, mat, bv)
	if err != nil {
		return nil, err
	}
	return &Problem{inner: inner}, nil
}

// ConeType identifies a cone family in a conic problem's constraint-row
// partition.
type ConeType int

// Cone families.
const (
	// ConeNonNeg is the non-negative orthant: each covered row is an ordinary
	// scalar inequality slack.
	ConeNonNeg = ConeType(lp.ConeNonNeg)
	// ConeSOC is the second-order (Lorentz) cone: the covered rows' slack
	// s = b − A·x must satisfy s₀ ≥ ‖s₁…‖ (axis row first).
	ConeSOC = ConeType(lp.ConeSOC)
)

// Cone describes one block of a conic problem's ordered constraint-row
// partition: Dim consecutive rows belonging to one cone. NonNeg blocks need
// Dim ≥ 1, SOC blocks Dim ≥ 2; block dims must sum to the constraint count.
type Cone struct {
	Type ConeType
	Dim  int
}

// NewConicProblem constructs and validates a conic problem: maximize cᵀx
// subject to b − A·x ∈ K and x ≥ 0, where K is the product of the given
// cones over the constraint rows in order. With only ConeNonNeg blocks the
// problem is an ordinary LP.
func NewConicProblem(name string, c []float64, a [][]float64, b []float64, cones []Cone) (*Problem, error) {
	mat, err := linalg.MatrixFromRows(a)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	cv := make(linalg.Vector, len(c))
	copy(cv, c)
	bv := make(linalg.Vector, len(b))
	copy(bv, b)
	inner := make([]lp.Cone, len(cones))
	for i, k := range cones {
		inner[i] = lp.Cone{Type: lp.ConeType(k.Type), Dim: k.Dim}
	}
	prob, err := lp.NewConic(name, cv, mat, bv, inner)
	if err != nil {
		return nil, err
	}
	return &Problem{inner: prob}, nil
}

// Name returns the problem's label.
func (p *Problem) Name() string { return p.inner.Name }

// IsConic reports whether the problem has at least one second-order cone
// block (i.e. is not a pure LP).
func (p *Problem) IsConic() bool { return p.inner.IsConic() }

// Cones returns the problem's constraint-row cone partition (nil for a pure
// LP built without explicit cones). The caller owns the slice.
func (p *Problem) Cones() []Cone {
	if len(p.inner.Cones) == 0 {
		return nil
	}
	out := make([]Cone, len(p.inner.Cones))
	for i, k := range p.inner.Cones {
		out[i] = Cone{Type: ConeType(k.Type), Dim: k.Dim}
	}
	return out
}

// NumVariables returns n.
func (p *Problem) NumVariables() int { return p.inner.NumVariables() }

// NumConstraints returns m.
func (p *Problem) NumConstraints() int { return p.inner.NumConstraints() }

// Objective evaluates cᵀx. NaN or ±Inf entries in x propagate into the
// returned value unchanged; callers evaluating analog read-back should treat
// a non-finite result as a hardware-fault signal (see Diagnostics), not as
// an objective value.
func (p *Problem) Objective(x []float64) (float64, error) {
	return p.inner.Objective(linalg.Vector(x))
}

// IsFeasible reports whether x satisfies A·x ≤ b·(1+tol) and x ≥ −tol — the
// paper's relaxed α-check with α = 1+tol.
func (p *Problem) IsFeasible(x []float64, tol float64) (bool, error) {
	return p.inner.IsFeasible(linalg.Vector(x), tol)
}

// Dual returns the symmetric dual, re-expressed as a maximization problem
// whose optimum is the negated dual optimum.
func (p *Problem) Dual() *Problem { return &Problem{inner: p.inner.Dual()} }

// WriteText serializes the problem in the textual format understood by
// ReadProblem (and by the cmd/lpsolve tool).
func (p *Problem) WriteText(w io.Writer) error { return p.inner.WriteText(w) }

// ReadProblem parses the textual problem format:
//
//	# comment
//	name example
//	maximize 3 2
//	subject 1 1 <= 4
//	subject 1 3 <= 6
func ReadProblem(r io.Reader) (*Problem, error) {
	inner, err := lp.ReadText(r)
	if err != nil {
		return nil, err
	}
	return &Problem{inner: inner}, nil
}

// ReadProblemMPS parses a linear program in (a strict subset of) MPS format
// and converts it to the canonical maximize form. See internal documentation
// for the supported subset; anything outside it returns ErrInvalid rather
// than a silently wrong problem.
func ReadProblemMPS(r io.Reader) (*Problem, error) {
	inner, err := lp.ReadMPS(r)
	if err != nil {
		return nil, err
	}
	return &Problem{inner: inner}, nil
}

// WriteMPS serializes the problem in MPS format (as a minimization of −cᵀx
// with all constraints as L rows); ReadProblemMPS round-trips it exactly.
func (p *Problem) WriteMPS(w io.Writer) error { return p.inner.WriteMPS(w) }

// GenerateFeasible returns a random feasible, bounded LP with m constraints
// and n variables (n = 0 means the paper's ratio n = m/3). Instances are
// reproducible per seed.
func GenerateFeasible(m, n int, seed int64) (*Problem, error) {
	inner, err := lp.GenerateFeasible(lp.GenConfig{Constraints: m, Variables: n, Seed: seed})
	if err != nil {
		return nil, err
	}
	return &Problem{inner: inner}, nil
}

// GenerateFeasibleSOCP returns a random feasible, bounded SOCP with m
// constraint rows and n variables (n = 0 means the paper's ratio n = m/3),
// partitioned into `blocks` second-order cones of dimension blockDim each
// (zero means one 3-dimensional cone) with the remaining rows in the
// non-negative orthant. Instances are reproducible per seed.
func GenerateFeasibleSOCP(m, n int, blocks, blockDim int, seed int64) (*Problem, error) {
	inner, err := lp.GenerateFeasibleSOCP(lp.SOCGenConfig{
		GenConfig: lp.GenConfig{Constraints: m, Variables: n, Seed: seed},
		Blocks:    blocks,
		BlockDim:  blockDim,
	})
	if err != nil {
		return nil, err
	}
	return &Problem{inner: inner}, nil
}

// GenerateInfeasible returns a random infeasible LP (contradictory
// constraints by construction) with m constraints and n variables.
func GenerateInfeasible(m, n int, seed int64) (*Problem, error) {
	inner, err := lp.GenerateInfeasible(lp.GenConfig{Constraints: m, Variables: n, Seed: seed})
	if err != nil {
		return nil, err
	}
	return &Problem{inner: inner}, nil
}

// Status classifies a solve outcome.
type Status int

// Solve outcomes.
const (
	// StatusOptimal means the engine converged to an optimum (for crossbar
	// engines: within the analog accuracy floor, α-feasibility verified).
	StatusOptimal = Status(lp.StatusOptimal)
	// StatusInfeasible means the constraints admit no solution.
	StatusInfeasible = Status(lp.StatusInfeasible)
	// StatusUnbounded means the objective grows without bound.
	StatusUnbounded = Status(lp.StatusUnbounded)
	// StatusIterationLimit means the iteration budget ran out.
	StatusIterationLimit = Status(lp.StatusIterationLimit)
	// StatusNumericalFailure means the solve failed numerically (singular
	// analog network, α-check rejection, …).
	StatusNumericalFailure = Status(lp.StatusNumericalFailure)
	// StatusCanceled means the solve was interrupted by its context; the
	// Solution holds the partial iterate reached at cancellation.
	StatusCanceled = Status(lp.StatusCanceled)
	// StatusDegraded means the analog fabric could not produce the answer
	// (even after the recovery ladder's re-solve and remap rungs) and the
	// solve fell back to the software path. The returned optimum is correct,
	// but it was not computed in-memory: the Hardware estimate covers only
	// the failed analog attempts, and Diagnostics reports what the fabric
	// did before giving up. Only possible with WithFaultModel/WithWriteVerify.
	StatusDegraded = Status(lp.StatusDegraded)
)

// String implements fmt.Stringer.
func (s Status) String() string { return lp.Status(s).String() }

// HardwareEstimate predicts the analog hardware cost of a crossbar solve.
type HardwareEstimate struct {
	// Latency is the end-to-end solve time on the modelled hardware.
	Latency time.Duration
	// EnergyJoules is the corresponding energy.
	EnergyJoules float64
	// CellWrites, AnalogOps and Conversions are the counted operations the
	// estimate is built from.
	CellWrites  int64
	AnalogOps   int64
	Conversions int64
	// CellsSkipped counts the physical programming pulses avoided by
	// delta-programming (WithDeltaWriteBits): cells whose discretized level
	// was unchanged since the last epoch-compatible write. Skipped writes
	// cost nothing in the latency/energy estimate.
	CellsSkipped int64
}

// BatchStats is the fabric-pool roll-up of one SolveBatch call, attached to
// the batch's first Solution — the same place the pool's one-time programming
// cost is charged. Per-Solution hardware counters remain per-solve marginals;
// the replica count and shard utilization are batch-level properties and live
// here.
type BatchStats struct {
	// Replicas is the pool width: how many fabric replicas were programmed.
	Replicas int
	// ShardSolves[r] counts the problems shard r completed. Scheduling is
	// load-balanced and nondeterministic, so the split varies run to run even
	// though every Solution is bit-identical.
	ShardSolves []int
	// ShardBusy[r] is the wall time shard r spent solving; divide by the
	// batch wall time for that shard's utilization.
	ShardBusy []time.Duration
}

// FaultModel describes permanent and progressive defects of the simulated
// memristor arrays, beyond the paper's per-write process variation: stuck
// cells, extra per-write programming noise, and retention drift. Pass it to
// WithFaultModel. Fault placement is a pure, seeded function of the physical
// cell coordinates, so every array built from the same configuration sees
// the same defect map — which is what makes the recovery ladder's remap rung
// meaningful and keeps concurrent solves on one handle consistent.
type FaultModel struct {
	// StuckOnDensity is the fraction of cells pinned at maximum conductance.
	StuckOnDensity float64
	// StuckOffDensity is the fraction of cells pinned at zero conductance.
	StuckOffDensity float64
	// Seed fixes the defect placement. Zero uses the solver's WithSeed value.
	Seed int64
	// WriteNoise is an extra relative programming-noise magnitude per write
	// attempt (uniform in ±WriteNoise); write-verify retries redraw it.
	WriteNoise float64
	// DriftPerCycle is the multiplicative conductance decay an unrefreshed
	// cell suffers per analog solve cycle (retention loss). Zero disables.
	DriftPerCycle float64
}

// Diagnostics reports what the fault-recovery machinery observed and did
// during one crossbar solve. Present on Solutions from solvers configured
// with WithFaultModel or WithWriteVerify.
type Diagnostics struct {
	// StuckOn / StuckOff count the defective devices inside the fabric
	// region the solve actually used (post-program census).
	StuckOn  int
	StuckOff int
	// WriteRetries counts write-verify corrective pulses across the solve.
	WriteRetries int64
	// Attempts is the number of analog solve attempts across all recovery
	// rungs (1 for a clean first-try solve).
	Attempts int
	// Remapped records that the mapping was moved to dodge stuck cells.
	Remapped bool
	// SoftwareFallback records that the software rung ran.
	SoftwareFallback bool
	// RecoveredBy names the rung that produced the result: "" (first
	// attempt), "resolve", "remap", or "software".
	RecoveredBy string
	// EnergyJoules is the modeled analog energy of the returned attempt's
	// hardware activity. Populated on clean first-try solves too, not just
	// recovered ones.
	EnergyJoules float64
}

// Solution is the result of a Solve call.
type Solution struct {
	Status    Status
	X         []float64
	DualY     []float64
	Objective float64
	// Iterations is the PDIP iteration count (0 for simplex; see Pivots).
	Iterations int
	// Pivots is the simplex pivot count (0 for PDIP engines).
	Pivots int
	// WallTime is the measured software solve duration.
	WallTime time.Duration
	// Hardware is the modelled crossbar cost (nil for software engines).
	Hardware *HardwareEstimate
	// PrimalInfeasibility, DualInfeasibility and DualityGap are the final
	// convergence measures for PDIP engines.
	PrimalInfeasibility float64
	DualInfeasibility   float64
	DualityGap          float64
	// ConeInfeasibility is the worst second-order-cone violation of the
	// constraint slack at the returned point (always 0 for pure LPs).
	ConeInfeasibility float64
	// Diagnostics carries fault and recovery telemetry (nil unless the
	// solver was built with WithFaultModel or WithWriteVerify).
	Diagnostics *Diagnostics
	// Batch is the fabric-pool roll-up of a SolveBatch call; non-nil only on
	// the first Solution of a batch.
	Batch *BatchStats

	// trace is the recorded iteration trajectory; set only when the solver
	// was built WithTrace. Exposed through the Trace accessor.
	trace []TraceRecord
}

// Trace returns the solve's recorded iteration trajectory, oldest first: one
// record per PDIP iteration or simplex pivot, recovery-ladder events, and a
// terminal done record whose fields agree with this Solution. Nil unless the
// solver was built WithTrace (or WithTraceJSONL). The caller owns the slice.
func (s *Solution) Trace() []TraceRecord { return s.trace }
