package memlp

// Serving-layer support: the canonical-matrix primitives behind cmd/memlpd's
// request coalescing. A solver service folding concurrent same-matrix
// submissions into one SolveBatch call needs two things from the problem
// type: a cheap content fingerprint to find coalescing candidates, and a way
// to make candidate problems share one literal constraint-matrix object so
// batch validation takes its pointer-identity fast path instead of the
// O(mn) element compare per batch member.

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// MatrixFingerprint returns a 64-bit content hash of the problem's
// constraint matrix: dimensions plus the exact bit pattern of every
// coefficient (FNV-1a). Equal matrices always hash equal; unequal matrices
// collide only with hash probability, so a fingerprint match must be
// confirmed with AdoptMatrixOf (or an element compare) before treating two
// problems as batch-compatible. The objective and right-hand side do not
// contribute: batch mates share A while b and c vary freely.
func (p *Problem) MatrixFingerprint() uint64 {
	a := p.inner.A
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(a.Rows()))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(a.Cols()))
	h.Write(buf[:])
	for i := 0; i < a.Rows(); i++ {
		for _, v := range a.RawRow(i) {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}

// AdoptMatrixOf makes p share canon's constraint-matrix object when the two
// matrices are element-identical, reporting whether the adoption happened
// (true is also returned when they already share the object). After a
// successful adoption, batching p together with canon — or with any other
// adopter of the same canonical problem — short-circuits the shared-A batch
// validation on pointer identity. The matrices' contents are untouched;
// adopting only drops p's duplicate copy in favor of the canonical one, so
// solves are unaffected.
//
// A false return means the matrices differ (or differ in shape): p is left
// unchanged and must not be batched with canon.
func (p *Problem) AdoptMatrixOf(canon *Problem) bool {
	pa, ca := p.inner.A, canon.inner.A
	if pa == ca {
		return true
	}
	if !pa.Equal(ca, 0) {
		return false
	}
	p.inner.A = ca
	return true
}
