module github.com/memlp/memlp

go 1.22
