package memlp

// Public-surface tests for iteration-level observability: the trace/Solution
// agreement property, trace determinism across pool widths, the JSONL
// streaming sink, metrics exposition, and the Diagnostics-on-success
// contract.

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"github.com/memlp/memlp/internal/linalg"
	"github.com/memlp/memlp/internal/trace"
)

// TestTraceAgreesWithSolutionAllEngines is the cross-engine property test:
// every recorded duality-gap sequence is finite, every record is stamped
// with the engine's name, and the terminal done record agrees exactly with
// the returned Solution — which in turn must survive the digital
// re-evaluation of the objective from X.
func TestTraceAgreesWithSolutionAllEngines(t *testing.T) {
	engines := []Engine{
		EngineCrossbar, EngineCrossbarLargeScale,
		EnginePDIP, EnginePDIPReduced, EngineSimplex,
	}
	for _, eng := range engines {
		eng := eng
		t.Run(eng.String(), func(t *testing.T) {
			p := feasibleLP(t, 8, 11)
			var opts []Option
			switch eng {
			case EngineCrossbar, EngineCrossbarLargeScale:
				opts = []Option{WithSeed(7), WithVariation(0.05), WithCycleNoise(0.25)}
			}
			s, err := NewSolver(eng, append(opts, WithTrace(0))...)
			if err != nil {
				t.Fatalf("NewSolver: %v", err)
			}
			sol, err := s.Solve(context.Background(), p)
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			recs := sol.Trace()
			if len(recs) == 0 {
				t.Fatal("no trace recorded")
			}
			for i, r := range recs {
				if r.Engine != eng.String() {
					t.Fatalf("trace[%d].Engine = %q, want %q", i, r.Engine, eng.String())
				}
				for name, v := range map[string]float64{
					"Mu": r.Mu, "DualityGap": r.DualityGap,
					"PrimalInfeasibility": r.PrimalInfeasibility,
					"DualInfeasibility":   r.DualInfeasibility,
					"Theta":               r.Theta,
				} {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Fatalf("trace[%d].%s = %v, want finite", i, name, v)
					}
				}
			}
			done := recs[len(recs)-1]
			if done.Event != TraceEventDone {
				t.Fatalf("last record event = %q, want %q", done.Event, TraceEventDone)
			}
			if done.Status != sol.Status.String() {
				t.Errorf("done.Status = %q, Solution.Status = %q", done.Status, sol.Status)
			}
			if !linalg.Identical(done.DualityGap, sol.DualityGap) {
				t.Errorf("done.DualityGap = %v, Solution.DualityGap = %v", done.DualityGap, sol.DualityGap)
			}
			if !linalg.Identical(done.Objective, sol.Objective) {
				t.Errorf("done.Objective = %v, Solution.Objective = %v", done.Objective, sol.Objective)
			}
			wantIter := sol.Iterations
			if eng == EngineSimplex {
				wantIter = sol.Pivots
			}
			if done.Iteration != wantIter {
				t.Errorf("done.Iteration = %d, want %d", done.Iteration, wantIter)
			}
			// Digital cross-check: re-evaluating cᵀx from the returned
			// iterate must reproduce the recorded objective.
			obj, err := p.Objective(sol.X)
			if err != nil {
				t.Fatalf("Objective(X): %v", err)
			}
			if !linalg.EqTol(obj, done.Objective, 1e-9) {
				t.Errorf("digital cᵀx = %v disagrees with traced objective %v", obj, done.Objective)
			}
		})
	}
}

// TestTraceBitIdenticalAcrossWidths extends the PR 4 determinism contract
// to traces: under variation and cycle noise, the full per-iteration
// trajectory — not just the final Solutions — must be bit-identical for
// every pool width.
func TestTraceBitIdenticalAcrossWidths(t *testing.T) {
	problems := poolBatch(t, 6, 10, 21)
	var ref []trace.Record
	for _, par := range []int{1, 2, 8} {
		s, err := NewSolver(EngineCrossbar, WithTrace(0),
			WithParallelism(par), WithVariation(0.08), WithCycleNoise(0.5), WithSeed(13))
		if err != nil {
			t.Fatalf("NewSolver(par=%d): %v", par, err)
		}
		sols, err := s.SolveBatch(context.Background(), problems)
		if err != nil {
			t.Fatalf("SolveBatch(par=%d): %v", par, err)
		}
		var recs []trace.Record
		for _, sol := range sols {
			for _, r := range sol.Trace() {
				recs = append(recs, trace.Record(r))
			}
		}
		if ref == nil {
			ref = recs
			continue
		}
		// tol ≤ 0 demands linalg.Identical on every float field.
		if diff := trace.Diff(recs, ref, 0); len(diff) != 0 {
			t.Errorf("par=%d traces not bit-identical to par=1:\n  %s",
				par, strings.Join(diff, "\n  "))
		}
	}
}

// TestWithTraceJSONLStreams: the streaming sink must emit every record of
// every solve, in input order, and round-trip through ReadTraceJSONL.
func TestWithTraceJSONLStreams(t *testing.T) {
	var buf bytes.Buffer
	s, err := NewSolver(EngineCrossbar, WithTraceJSONL(&buf), WithSeed(3))
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	var want []TraceRecord
	for _, seed := range []int64{11, 19} {
		sol, err := s.Solve(context.Background(), feasibleLP(t, 6, seed))
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		want = append(want, sol.Trace()...)
	}
	if err := s.TraceErr(); err != nil {
		t.Fatalf("TraceErr: %v", err)
	}
	got, err := ReadTraceJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadTraceJSONL: %v", err)
	}
	gi := make([]trace.Record, len(got))
	wi := make([]trace.Record, len(want))
	for i, r := range got {
		gi[i] = trace.Record(r)
	}
	for i, r := range want {
		wi[i] = trace.Record(r)
	}
	if diff := trace.Diff(gi, wi, 0); len(diff) != 0 {
		t.Errorf("streamed trace differs from Solution.Trace:\n  %s", strings.Join(diff, "\n  "))
	}
}

// failAfter errors once n bytes have been accepted.
type failAfter struct{ n int }

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("sink full")
	}
	f.n -= len(p)
	return len(p), nil
}

// TestTraceErrLatchesWriterFailure: a failing JSONL writer must surface
// through TraceErr without failing the solve itself.
func TestTraceErrLatchesWriterFailure(t *testing.T) {
	s, err := NewSolver(EngineCrossbar, WithTraceJSONL(&failAfter{n: 64}))
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	sol, err := s.Solve(context.Background(), feasibleLP(t, 6, 11))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != StatusOptimal {
		t.Errorf("solve status = %v; a sink failure must not affect the solve", sol.Status)
	}
	if s.TraceErr() == nil {
		t.Error("TraceErr = nil after writer failure")
	}
}

// TestWithTraceJSONLNilWriter pins the option's own validation.
func TestWithTraceJSONLNilWriter(t *testing.T) {
	if _, err := NewSolver(EngineCrossbar, WithTraceJSONL(nil)); !errors.Is(err, ErrInvalid) {
		t.Errorf("nil writer: err = %v, want ErrInvalid", err)
	}
}

// TestMetricsExposition folds a traced batch into Metrics and checks both
// exposition surfaces: Prometheus text (with engine/status labels and shard
// series) and the expvar JSON summary.
func TestMetricsExposition(t *testing.T) {
	problems := poolBatch(t, 4, 8, 5)
	s, err := NewSolver(EngineCrossbar, WithTrace(0), WithParallelism(2), WithSeed(9))
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	sols, err := s.SolveBatch(context.Background(), problems)
	if err != nil {
		t.Fatalf("SolveBatch: %v", err)
	}
	m := NewMetrics()
	m.ObserveAll(sols)
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := buf.String()
	for _, want := range []string{
		`memlp_solves_total{engine="crossbar",status="optimal"} 4`,
		"memlp_iterations_total",
		"memlp_trace_records_total",
		"memlp_shard_solves_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Prometheus exposition missing %q:\n%s", want, text)
		}
	}
	if js := m.String(); !strings.Contains(js, "solves") {
		t.Errorf("expvar summary looks empty: %s", js)
	}
}

// TestSolutionTraceNilWithoutOption: tracing is opt-in; an untraced solve
// must not carry a trace.
func TestSolutionTraceNilWithoutOption(t *testing.T) {
	s, err := NewSolver(EngineSimplex)
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	sol, err := s.Solve(context.Background(), dietLP(t))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Trace() != nil {
		t.Error("untraced solve returned a trace")
	}
}

// benchmarkSolve is the BENCH_TRACE.json harness: the same seeded noisy
// crossbar solve with and without the ring-sink recorder, so the pair
// isolates tracing's end-to-end overhead (see `make bench-trace`).
func benchmarkSolve(b *testing.B, traced bool) {
	p := feasibleLP(b, 16, 7)
	opts := []Option{WithSeed(3), WithVariation(0.05), WithCycleNoise(0.25)}
	if traced {
		opts = append(opts, WithTrace(0))
	}
	s, err := NewSolver(EngineCrossbar, opts...)
	if err != nil {
		b.Fatalf("NewSolver: %v", err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(ctx, p); err != nil {
			b.Fatalf("Solve: %v", err)
		}
	}
}

func BenchmarkSolveUntraced(b *testing.B) { benchmarkSolve(b, false) }
func BenchmarkSolveTraced(b *testing.B)   { benchmarkSolve(b, true) }

// TestDiagnosticsOnSuccessfulBatch pins the satellite fix at the public
// surface: with write-verify configured, every Solution of a successful
// batch carries Diagnostics with the modeled energy populated.
func TestDiagnosticsOnSuccessfulBatch(t *testing.T) {
	problems := poolBatch(t, 4, 8, 3)
	s, err := NewSolver(EngineCrossbar, WithParallelism(2), WithSeed(5), WithWriteVerify(3, 0.05))
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	sols, err := s.SolveBatch(context.Background(), problems)
	if err != nil {
		t.Fatalf("SolveBatch: %v", err)
	}
	for i, sol := range sols {
		d := sol.Diagnostics
		if d == nil {
			t.Fatalf("batch solution %d has no Diagnostics despite write-verify", i)
		}
		if d.Attempts != 1 {
			t.Errorf("solution %d: Attempts = %d, want 1", i, d.Attempts)
		}
		if d.EnergyJoules <= 0 {
			t.Errorf("solution %d: EnergyJoules = %v, want > 0", i, d.EnergyJoules)
		}
	}
}
