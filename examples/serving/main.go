// Serving over HTTP: the examples/streaming scenario moved behind memlpd.
// A router no longer links the solver into its binary — it POSTs the
// throughput LP to a solver daemon every time its link capacities change.
// Because every epoch shares the same (fixed) topology matrix, the daemon
// coalesces concurrent requests into one SolveBatch on an already-programmed
// fabric: the expensive array programming is paid once per batch, not once
// per request, which is the paper's amortization claim at the service level.
//
// The program boots the memlpd handler in-process on a loopback port (the
// standalone daemon is `go run ./cmd/memlpd`), fires one HTTP request per
// capacity epoch concurrently, then demonstrates the X-Deadline header.
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"github.com/memlp/memlp/internal/serve"
)

func main() {
	// The daemon side: identical to `memlpd -addr 127.0.0.1:0` with a window
	// wide enough that this program's concurrent epochs always coalesce.
	srv := serve.New(serve.Config{CoalesceWindow: 100 * time.Millisecond})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("memlpd serving on %s\n\n", base)

	// The client side: the streaming example's topology (3 paths, 5 links),
	// one request body per measurement epoch. Only the right-hand side (the
	// link capacities) changes, so every epoch shares the same matrix.
	epochs := [][]float64{
		{10, 7, 4, 8, 9},
		{12, 7, 4, 8, 9},  // link sa upgraded
		{12, 5, 4, 8, 9},  // link sb congested
		{12, 5, 2, 8, 11}, // ab degraded, bt upgraded
		{6, 5, 2, 8, 11},  // sa incident
	}
	bodies := make([][]byte, len(epochs))
	for i, caps := range epochs {
		problem := fmt.Sprintf(
			"name epoch-%d\nmaximize 1 1 1\n"+
				"subject 1 0 1 <= %g\nsubject 0 1 0 <= %g\nsubject 0 0 1 <= %g\n"+
				"subject 1 0 0 <= %g\nsubject 0 1 1 <= %g\n",
			i, caps[0], caps[1], caps[2], caps[3], caps[4])
		bodies[i], err = json.Marshal(serve.Request{
			Problem: problem,
			Engine:  "crossbar",
			Options: serve.Options{Variation: 0.05, Seed: 7},
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// Fire all epochs concurrently: the daemon folds them into one batch.
	fmt.Println("five concurrent same-topology epochs:")
	results := make([]serve.Response, len(bodies))
	var wg sync.WaitGroup
	for i, body := range bodies {
		wg.Add(1)
		go func(i int, body []byte) {
			defer wg.Done()
			results[i] = post(base, body, nil)
		}(i, body)
	}
	wg.Wait()
	for _, r := range results {
		fmt.Printf("  %-8s  status=%-8s  throughput=%6.3f  coalesced=%v (batch of %d)\n",
			r.Name, r.Status, r.Objective, r.Coalesced, r.BatchSize)
	}
	if hw := results[0].Hardware; hw != nil {
		fmt.Printf("  modeled fabric cost, first epoch: %v, %d cell writes\n",
			time.Duration(hw.LatencyNS), hw.CellWrites)
	}

	// A deadline the solve cannot meet: the daemon answers 200 with the
	// solver's "canceled" status instead of hanging the client.
	fmt.Println("\nan epoch with an impossible X-Deadline:")
	r := post(base, bodies[0], map[string]string{"X-Deadline": "1ns"})
	fmt.Printf("  status=%s (%s)\n", r.Status, r.Error)

	// The daemon's own accounting.
	var vars map[string]any
	resp, err := http.Get(base + "/vars")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		log.Fatal(err)
	}
	var requests float64
	if byCode, ok := vars["serve_requests"].(map[string]any); ok {
		for _, n := range byCode {
			if v, ok := n.(float64); ok {
				requests += v
			}
		}
	}
	fmt.Printf("\n/vars: %v requests, %v coalesced into %v batches\n",
		requests, vars["serve_coalesced"], vars["serve_batches"])
}

// post sends one /solve request and decodes the response, with optional
// extra headers.
func post(base string, body []byte, headers map[string]string) serve.Response {
	req, err := http.NewRequest(http.MethodPost, base+"/solve", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out serve.Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("HTTP %d: %s", resp.StatusCode, out.Error)
	}
	return out
}
