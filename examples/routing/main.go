// Routing: maximum-throughput traffic assignment over a small network — one
// of the applications the paper's introduction motivates ("routing,
// scheduling, and various optimization problems").
//
// A source s wants to push as much traffic as possible to a sink t over
// three candidate paths with shared links of limited capacity:
//
//	path 1: s → a → t        (links sa, at)
//	path 2: s → b → t        (links sb, bt)
//	path 3: s → a → b → t    (links sa, ab, bt)
//
// Variables x1..x3 are per-path flows; each link's total traffic must stay
// within its capacity. Maximizing x1 + x2 + x3 is a pure LP — and because
// path flows share links, the constraint matrix has the coupled structure
// interior-point methods handle well.
//
//	go run ./examples/routing
package main

import (
	"fmt"
	"log"

	"github.com/memlp/memlp"
)

func main() {
	// Link capacities.
	caps := map[string]float64{
		"sa": 10,
		"sb": 7,
		"ab": 4,
		"at": 8,
		"bt": 9,
	}

	// Rows: one capacity constraint per link; columns: paths 1..3.
	// A[link][path] = 1 when the path uses the link.
	p, err := memlp.NewProblem("max-throughput-routing",
		[]float64{1, 1, 1}, // maximize total admitted traffic
		[][]float64{
			{1, 0, 1}, // sa: paths 1 and 3
			{0, 1, 0}, // sb: path 2
			{0, 0, 1}, // ab: path 3
			{1, 0, 0}, // at: path 1
			{0, 1, 1}, // bt: paths 2 and 3
		},
		[]float64{caps["sa"], caps["sb"], caps["ab"], caps["at"], caps["bt"]})
	if err != nil {
		log.Fatalf("building problem: %v", err)
	}

	// Reference with simplex (exact), then the crossbar engine.
	ref, err := memlp.Solve(p, memlp.EngineSimplex)
	if err != nil {
		log.Fatalf("simplex: %v", err)
	}
	sol, err := memlp.Solve(p, memlp.EngineCrossbar,
		memlp.WithVariation(0.05), memlp.WithSeed(7))
	if err != nil {
		log.Fatalf("crossbar: %v", err)
	}

	fmt.Println("max-throughput routing (3 paths, 5 capacity-limited links)")
	fmt.Printf("  exact (simplex):   throughput=%.3f  flows=%.3v\n", ref.Objective, ref.X)
	fmt.Printf("  crossbar (5%% var): throughput=%.3f  flows=%.3v\n", sol.Objective, sol.X)
	fmt.Printf("  hardware estimate: %v, %.3g J\n",
		sol.Hardware.Latency, sol.Hardware.EnergyJoules)

	// Which links are saturated at the optimum? The dual variables (shadow
	// prices) of the crossbar solve identify the bottlenecks.
	links := []string{"sa", "sb", "ab", "at", "bt"}
	fmt.Println("  link shadow prices (crossbar dual):")
	for i, name := range links {
		fmt.Printf("    %-3s cap %4.1f  price %.3f\n", name, caps[name], sol.DualY[i])
	}
}
