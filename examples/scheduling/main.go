// Scheduling: fractional job scheduling across heterogeneous machines — the
// second application domain the paper's introduction names.
//
// Three machines process four job classes at different speeds. Each machine
// has limited hours; each job class has a market value per unit completed
// and a demand cap. Choosing how many units of each class each machine runs
// is an LP with 12 variables and 7 constraints. The example solves it with
// the software baseline and both crossbar algorithms, showing the
// Algorithm 1 / Algorithm 2 trade-off on one concrete problem.
//
//	go run ./examples/scheduling
package main

import (
	"fmt"
	"log"

	"github.com/memlp/memlp"
)

func main() {
	const (
		machines = 3
		jobs     = 4
	)
	// hours[i][j]: machine-hours machine i needs per unit of job class j.
	hours := [machines][jobs]float64{
		{1.0, 2.0, 1.5, 0.8},
		{1.2, 1.6, 1.1, 1.0},
		{0.9, 2.4, 1.3, 0.7},
	}
	avail := [machines]float64{40, 36, 44}  // machine-hour budgets
	value := [jobs]float64{5, 9, 7, 4}      // value per completed unit
	demand := [jobs]float64{25, 10, 18, 30} // market caps per class

	// Variables x[i][j] flattened to x[i*jobs+j].
	nvars := machines * jobs
	c := make([]float64, nvars)
	for i := 0; i < machines; i++ {
		for j := 0; j < jobs; j++ {
			c[i*jobs+j] = value[j]
		}
	}
	var rows [][]float64
	var b []float64
	// Machine-hour constraints.
	for i := 0; i < machines; i++ {
		row := make([]float64, nvars)
		for j := 0; j < jobs; j++ {
			row[i*jobs+j] = hours[i][j]
		}
		rows = append(rows, row)
		b = append(b, avail[i])
	}
	// Demand caps per job class (across machines).
	for j := 0; j < jobs; j++ {
		row := make([]float64, nvars)
		for i := 0; i < machines; i++ {
			row[i*jobs+j] = 1
		}
		rows = append(rows, row)
		b = append(b, demand[j])
	}

	p, err := memlp.NewProblem("job-scheduling", c, rows, b)
	if err != nil {
		log.Fatalf("building problem: %v", err)
	}

	ref, err := memlp.Solve(p, memlp.EnginePDIPReduced)
	if err != nil {
		log.Fatalf("software: %v", err)
	}
	alg1, err := memlp.Solve(p, memlp.EngineCrossbar,
		memlp.WithVariation(0.10), memlp.WithSeed(3))
	if err != nil {
		log.Fatalf("crossbar algorithm 1: %v", err)
	}
	alg2, err := memlp.Solve(p, memlp.EngineCrossbarLargeScale,
		memlp.WithVariation(0.10), memlp.WithSeed(3))
	if err != nil {
		log.Fatalf("crossbar algorithm 2: %v", err)
	}

	fmt.Println("fractional job scheduling (3 machines × 4 job classes)")
	fmt.Printf("  software PDIP:        value=%.2f (%d iterations)\n", ref.Objective, ref.Iterations)
	fmt.Printf("  crossbar algorithm 1: value=%.2f (%d iterations, %v, %.3g J)\n",
		alg1.Objective, alg1.Iterations, alg1.Hardware.Latency, alg1.Hardware.EnergyJoules)
	fmt.Printf("  crossbar algorithm 2: value=%.2f (%d iterations, %v, %.3g J)\n",
		alg2.Objective, alg2.Iterations, alg2.Hardware.Latency, alg2.Hardware.EnergyJoules)

	fmt.Println("  machine loads at the software optimum:")
	for i := 0; i < machines; i++ {
		var used float64
		for j := 0; j < jobs; j++ {
			used += hours[i][j] * ref.X[i*jobs+j]
		}
		fmt.Printf("    machine %d: %5.1f / %.0f hours\n", i+1, used, avail[i])
	}
}
