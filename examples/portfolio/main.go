// Portfolio optimization on the conic crossbar engine: maximize expected
// return subject to a budget and a second-order-cone risk cap — the classic
// SOCP the conic-form core (DESIGN.md D14) opens up on the same fabric as
// the paper's LPs.
//
//	go run ./examples/portfolio
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/memlp/memlp"
)

func main() {
	// Three assets with expected returns µ and a 2-factor risk model F:
	//
	//	maximize µᵀx
	//	subject to x₀+x₁+x₂ ≤ 1        (budget; cash may idle)
	//	           ‖F·x‖    ≤ σ        (risk cap, second-order cone)
	//	           x ≥ 0               (long-only)
	//
	// In canonical conic form the cone rows' slack is s = b − A·x: the axis
	// row is 0·x ≤ σ (slack σ) and each factor row is −(F·x)ᵢ ≤ 0 (slack
	// (F·x)ᵢ), so s ∈ SOC ⇔ σ ≥ ‖F·x‖. The risky asset 0 has the highest
	// return; the cone caps how much of it the portfolio can hold.
	mu := []float64{0.12, 0.09, 0.05}
	f := [][]float64{
		{0.20, 0.05, 0.01},
		{0.04, 0.12, 0.02},
	}
	sigma := 0.08

	rows := [][]float64{
		{1, 1, 1}, // budget (non-negative orthant)
		{0, 0, 0}, // cone axis
	}
	b := []float64{1, sigma}
	for _, fr := range f {
		rows = append(rows, []float64{-fr[0], -fr[1], -fr[2]})
		b = append(b, 0)
	}
	p, err := memlp.NewConicProblem("portfolio", mu, rows, b, []memlp.Cone{
		{Type: memlp.ConeNonNeg, Dim: 1},
		{Type: memlp.ConeSOC, Dim: 1 + len(f)},
	})
	if err != nil {
		log.Fatalf("building problem: %v", err)
	}

	// Software conic reference (PDIP handles SOC blocks natively).
	ref, err := memlp.Solve(p, memlp.EnginePDIP)
	if err != nil {
		log.Fatalf("software solve: %v", err)
	}
	fmt.Printf("software PDIP: status=%v return=%.4f%% x=%.4v\n",
		ref.Status, 100*ref.Objective, ref.X)

	// The same SOCP on the simulated analog fabric — the conic engine rides
	// Algorithm 1's extended-matrix mapping with Nesterov–Todd blocks on the
	// cone rows — including stuck cells and the recovery ladder.
	solver, err := memlp.NewSolver(memlp.EngineConic,
		memlp.WithSeed(21),
		memlp.WithFaultModel(memlp.FaultModel{StuckOnDensity: 0.0005, StuckOffDensity: 0.0005}))
	if err != nil {
		log.Fatalf("building conic solver: %v", err)
	}
	sol, err := solver.Solve(context.Background(), p)
	if err != nil {
		log.Fatalf("conic solve: %v", err)
	}
	fmt.Printf("conic crossbar: status=%v return=%.4f%% x=%.4v (%d iterations)\n",
		sol.Status, 100*sol.Objective, sol.X, sol.Iterations)
	fmt.Printf("convergence:   duality gap=%.3g cone infeasibility=%.3g\n",
		sol.DualityGap, sol.ConeInfeasibility)
	fmt.Printf("hardware:      latency=%v energy=%.3g J\n",
		sol.Hardware.Latency, sol.Hardware.EnergyJoules)
	if d := sol.Diagnostics; d != nil {
		fmt.Printf("fabric:        %d stuck-on, %d stuck-off cells (recovered by %q)\n",
			d.StuckOn, d.StuckOff, d.RecoveredBy)
	}
}
