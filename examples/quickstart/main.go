// Quickstart: solve a small linear program on the simulated memristor
// crossbar and compare it with the software interior-point baseline.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/memlp/memlp"
)

func main() {
	// A classic two-variable LP:
	//   maximize 3x + 2y
	//   subject to  x +  y ≤ 4
	//               x + 3y ≤ 6
	//               x, y ≥ 0
	// The optimum is x = 4, y = 0 with objective 12.
	p, err := memlp.NewProblem("quickstart",
		[]float64{3, 2},
		[][]float64{
			{1, 1},
			{1, 3},
		},
		[]float64{4, 6})
	if err != nil {
		log.Fatalf("building problem: %v", err)
	}

	ctx := context.Background()

	// Software reference.
	ref, err := memlp.Solve(p, memlp.EnginePDIP)
	if err != nil {
		log.Fatalf("software solve: %v", err)
	}
	fmt.Printf("software PDIP:  status=%v objective=%.4f x=%.4v (%.0f iterations)\n",
		ref.Status, ref.Objective, ref.X, float64(ref.Iterations))

	// The same problem on the simulated analog crossbar, with 10% process
	// variation — the paper's Algorithm 1. A Solver handle keeps the
	// programmed array (and its variation draw) alive across Solve calls;
	// the context can cancel a long solve mid-iteration.
	solver, err := memlp.NewSolver(memlp.EngineCrossbar,
		memlp.WithVariation(0.10),
		memlp.WithSeed(42))
	if err != nil {
		log.Fatalf("building crossbar solver: %v", err)
	}
	sol, err := solver.Solve(ctx, p)
	if err != nil {
		log.Fatalf("crossbar solve: %v", err)
	}
	fmt.Printf("crossbar PDIP:  status=%v objective=%.4f x=%.4v (%.0f iterations)\n",
		sol.Status, sol.Objective, sol.X, float64(sol.Iterations))
	fmt.Printf("hardware model: latency=%v energy=%.3g J (%d cell writes, %d analog ops)\n",
		sol.Hardware.Latency, sol.Hardware.EnergyJoules,
		sol.Hardware.CellWrites, sol.Hardware.AnalogOps)

	errPct := 100 * (sol.Objective - ref.Objective) / ref.Objective
	fmt.Printf("objective error vs software: %+.2f%%\n", errPct)
}
