// Production planning at scale: a randomly generated factory-planning LP in
// the paper's evaluation regime (m constraints, n = m/3 variables), solved
// with both crossbar algorithms and both software baselines — a miniature
// version of the §4 experiments with a per-engine comparison table, plus an
// infeasibility-detection demo.
//
//	go run ./examples/production
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"github.com/memlp/memlp"
)

func main() {
	// A 48-constraint, 16-variable synthetic production-planning instance:
	// resources (machine time, raw materials, labour pools, storage) bound
	// linear combinations of the 16 product lines' output levels.
	const m = 48
	p, err := memlp.GenerateFeasible(m, 0, 2026)
	if err != nil {
		log.Fatalf("generating instance: %v", err)
	}
	fmt.Printf("production planning: %d resources, %d product lines\n\n",
		p.NumConstraints(), p.NumVariables())

	type engineRun struct {
		name   string
		engine memlp.Engine
		opts   []memlp.Option
	}
	runs := []engineRun{
		{"simplex", memlp.EngineSimplex, nil},
		{"software PDIP (full Newton)", memlp.EnginePDIP, nil},
		{"software PDIP (reduced KKT)", memlp.EnginePDIPReduced, nil},
		{"crossbar, no variation", memlp.EngineCrossbar, []memlp.Option{memlp.WithSeed(1)}},
		{"crossbar, 10% variation", memlp.EngineCrossbar,
			[]memlp.Option{memlp.WithVariation(0.10), memlp.WithSeed(1)}},
		{"crossbar large-scale, 10% var", memlp.EngineCrossbarLargeScale,
			[]memlp.Option{memlp.WithVariation(0.10), memlp.WithSeed(1)}},
	}

	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "engine\tstatus\tobjective\titer/pivot\twall\thw latency\thw energy")
	var reference float64
	for i, r := range runs {
		sol, err := memlp.Solve(p, r.engine, r.opts...)
		if err != nil {
			log.Fatalf("%s: %v", r.name, err)
		}
		if i == 0 {
			reference = sol.Objective
		}
		steps := sol.Iterations
		if sol.Pivots > 0 {
			steps = sol.Pivots
		}
		hwLat, hwEnergy := "-", "-"
		if sol.Hardware != nil {
			hwLat = sol.Hardware.Latency.String()
			hwEnergy = fmt.Sprintf("%.3g J", sol.Hardware.EnergyJoules)
		}
		fmt.Fprintf(tw, "%s\t%v\t%.4f\t%d\t%v\t%s\t%s\n",
			r.name, sol.Status, sol.Objective, steps, sol.WallTime.Round(1000), hwLat, hwEnergy)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexact optimum (simplex): %.4f\n", reference)

	// Infeasibility detection: §4.4 highlights that the crossbar solver
	// flags contradictory constraint sets quickly.
	infeasible, err := memlp.GenerateInfeasible(m, 0, 99)
	if err != nil {
		log.Fatalf("generating infeasible instance: %v", err)
	}
	sol, err := memlp.Solve(infeasible, memlp.EngineCrossbar, memlp.WithSeed(1))
	if err != nil {
		log.Fatalf("infeasible solve: %v", err)
	}
	fmt.Printf("\ninfeasible variant: status=%v after %d iterations (hw estimate %v)\n",
		sol.Status, sol.Iterations, sol.Hardware.Latency)
}
