// Robust (least-norm) regression on the conic crossbar engine: minimize the
// Euclidean residual ‖y − X·β‖ by lifting the norm into a second-order cone
// with an epigraph variable t — the second SOCP workload the conic-form core
// opens on the paper's fabric.
//
//	go run ./examples/robustreg
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"github.com/memlp/memlp"
)

func main() {
	// Fit y ≈ β₀ + β₁·u to four observations. The canonical form maximizes,
	// so minimize ‖y − X·β‖ as
	//
	//	maximize −t
	//	subject to t ≤ 10                    (orthant bound; keeps t finite)
	//	           ‖y − X·β‖ ≤ t             (second-order cone, axis t)
	//	           β, t ≥ 0
	//
	// Variables are [β₀, β₁, t]. The cone's axis row is −t ≤ 0 (slack t) and
	// each data row is (X·β)ᵢ ≤ yᵢ (slack yᵢ − (X·β)ᵢ).
	u := []float64{0, 1, 2, 3}
	y := []float64{1.05, 1.52, 1.98, 2.55}

	rows := [][]float64{
		{0, 0, 1},  // t ≤ 10 (orthant)
		{0, 0, -1}, // cone axis: slack t
	}
	b := []float64{10, 0}
	for i := range u {
		rows = append(rows, []float64{1, u[i], 0})
		b = append(b, y[i])
	}
	p, err := memlp.NewConicProblem("robust-regression",
		[]float64{0, 0, -1}, rows, b, []memlp.Cone{
			{Type: memlp.ConeNonNeg, Dim: 1},
			{Type: memlp.ConeSOC, Dim: 1 + len(u)},
		})
	if err != nil {
		log.Fatalf("building problem: %v", err)
	}

	// Software conic reference.
	ref, err := memlp.Solve(p, memlp.EnginePDIP)
	if err != nil {
		log.Fatalf("software solve: %v", err)
	}
	fmt.Printf("software PDIP: status=%v residual=%.5f β=(%.4f, %.4f)\n",
		ref.Status, -ref.Objective, ref.X[0], ref.X[1])

	// The analog fabric with the default fault model and recovery ladder.
	solver, err := memlp.NewSolver(memlp.EngineConic,
		memlp.WithSeed(11),
		memlp.WithFaultModel(memlp.FaultModel{StuckOnDensity: 0.0005, StuckOffDensity: 0.0005}))
	if err != nil {
		log.Fatalf("building conic solver: %v", err)
	}
	sol, err := solver.Solve(context.Background(), p)
	if err != nil {
		log.Fatalf("conic solve: %v", err)
	}
	fmt.Printf("conic crossbar: status=%v residual=%.5f β=(%.4f, %.4f) (%d iterations)\n",
		sol.Status, -sol.Objective, sol.X[0], sol.X[1], sol.Iterations)
	fmt.Printf("convergence:   duality gap=%.3g cone infeasibility=%.3g\n",
		sol.DualityGap, sol.ConeInfeasibility)

	// Sanity check against the analytic residual of the fitted line.
	res := 0.0
	for i := range u {
		d := y[i] - (sol.X[0] + sol.X[1]*u[i])
		res += d * d
	}
	fmt.Printf("check:         ‖y − X·β‖ at the returned β = %.5f\n", math.Sqrt(res))
}
