// Streaming re-optimization: the paper's "high-data-rate applications"
// motivation made concrete. A router keeps one crossbar programmed with its
// (fixed) network topology and re-solves the throughput LP every time the
// link capacities change — paying the expensive array programming once and
// only the O(N)-per-iteration coefficient refresh per update.
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/memlp/memlp"
)

func main() {
	// Topology (fixed): 3 paths over 5 links, as in examples/routing.
	a := [][]float64{
		{1, 0, 1}, // link sa: paths 1, 3
		{0, 1, 0}, // link sb: path 2
		{0, 0, 1}, // link ab: path 3
		{1, 0, 0}, // link at: path 1
		{0, 1, 1}, // link bt: paths 2, 3
	}
	c := []float64{1, 1, 1} // maximize admitted traffic

	// A stream of capacity updates (measurement epochs).
	epochs := [][]float64{
		{10, 7, 4, 8, 9},
		{12, 7, 4, 8, 9},  // link sa upgraded
		{12, 5, 4, 8, 9},  // link sb congested
		{12, 5, 2, 8, 11}, // ab degraded, bt upgraded
		{6, 5, 2, 8, 11},  // sa incident
	}

	problems := make([]*memlp.Problem, len(epochs))
	for i, caps := range epochs {
		p, err := memlp.NewProblem(fmt.Sprintf("epoch-%d", i), c, a, caps)
		if err != nil {
			log.Fatalf("epoch %d: %v", i, err)
		}
		problems[i] = p
	}

	// The Solver handle is the "deployed router": one persistent simulated
	// array whose programming (and process variation) survives across the
	// whole capacity stream.
	solver, err := memlp.NewSolver(memlp.EngineCrossbar,
		memlp.WithVariation(0.05), memlp.WithSeed(11))
	if err != nil {
		log.Fatalf("NewSolver: %v", err)
	}
	sols, err := solver.SolveBatch(context.Background(), problems)
	if err != nil {
		log.Fatalf("SolveBatch: %v", err)
	}

	fmt.Println("streaming re-optimization over one persistent crossbar")
	fmt.Println("epoch  capacities            throughput  status    hw latency  cell writes")
	for i, sol := range sols {
		fmt.Printf("%5d  %-20s  %10.3f  %-8v  %10v  %11d\n",
			i, fmt.Sprintf("%v", epochs[i]), sol.Objective, sol.Status,
			sol.Hardware.Latency, sol.Hardware.CellWrites)
	}
	fmt.Println()
	fmt.Println("epoch 0 pays the one-time array programming; later epochs only")
	fmt.Println("refresh the complementarity coefficients (compare cell writes).")
}
