package memlp

// Microbenchmarks of the solver handle and the sharded fabric pool (the
// tentpole acceptance numbers for handle reuse and batch parallelism). The
// paper-evaluation benchmark suite lives in bench_experiments_test.go.

import (
	"context"
	"testing"
)

// --- Solver handle reuse (tentpole acceptance benchmark) -------------------

// BenchmarkSolverReuse measures repeated same-shape solves on one persistent
// handle: the fabric stays programmed and the iteration workspaces are
// reused, so per-solve allocation should be near zero.
func BenchmarkSolverReuse(b *testing.B) {
	p, err := GenerateFeasible(8, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewSolver(EngineCrossbar)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, err := s.Solve(ctx, p); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(ctx, p); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Sharded fabric pool (batch parallelism acceptance benchmarks) ---------

// benchmarkBatchParallel measures one 64-problem shared-A batch at a fixed
// pool width. The per-call cost includes building and programming the
// replicas, exactly as SolveBatch charges a real caller; the solve work
// dominates at this instance size, so throughput should scale with the
// width until the machine runs out of cores.
func benchmarkBatchParallel(b *testing.B, par int) {
	problems := poolBatch(b, 64, 24, 11)
	s, err := NewSolver(EngineCrossbar, WithParallelism(par), WithSeed(2))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SolveBatch(ctx, problems); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchParallel1(b *testing.B) { benchmarkBatchParallel(b, 1) }
func BenchmarkBatchParallel2(b *testing.B) { benchmarkBatchParallel(b, 2) }
func BenchmarkBatchParallel4(b *testing.B) { benchmarkBatchParallel(b, 4) }
func BenchmarkBatchParallel8(b *testing.B) { benchmarkBatchParallel(b, 8) }

// --- Tiled PDHG worker grids (make bench-pdhg → BENCH_PDHG.json) -----------

// benchmarkPDHGTiles measures one full restarted-PDHG solve of a 24x18
// instance tiled into a 3x3 grid of 8-wide crossbar blocks, at a fixed
// worker-grid side g (g² goroutines sweep the 9 blocks). Results are
// bit-identical for every g — the grid is pure execution parallelism — so
// the three sizes measure only the halo-exchange scaling of the sweep.
func benchmarkPDHGTiles(b *testing.B, g int) {
	p, err := GenerateFeasible(24, 18, 71)
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewSolver(EnginePDHG, WithSeed(71), WithNoC("mesh", 8), WithTiles(g))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, err := s.Solve(ctx, p); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(ctx, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPDHGTiles1(b *testing.B)  { benchmarkPDHGTiles(b, 1) }
func BenchmarkPDHGTiles4(b *testing.B)  { benchmarkPDHGTiles(b, 2) }
func BenchmarkPDHGTiles16(b *testing.B) { benchmarkPDHGTiles(b, 4) }

// BenchmarkSolveOneShot is the baseline the handle is measured against: the
// package-level convenience wrapper rebuilds solver and fabric every call.
func BenchmarkSolveOneShot(b *testing.B) {
	p, err := GenerateFeasible(8, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p, EngineCrossbar); err != nil {
			b.Fatal(err)
		}
	}
}
