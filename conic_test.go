package memlp

// Public-API acceptance suite for the conic-form core (DESIGN.md D14): the
// conic engine must solve the SOCP workloads the refactor targets — portfolio
// optimization and robust regression — to verified optimality on the
// fault-injected analog fabric, pure LPs must take the bit-identical LP path
// whether or not they carry an explicit all-orthant cone list, and every
// LP-only engine must reject SOC blocks with the sentinel error instead of
// producing a silently wrong answer.

import (
	"context"
	"errors"
	"math"
	"testing"
)

// defaultFaultOpts is the examples' default fault model: seeded stuck cells
// with the full recovery ladder behind them.
func defaultFaultOpts(seed int64) []Option {
	return []Option{
		WithSeed(seed),
		WithFaultModel(FaultModel{StuckOnDensity: 0.0005, StuckOffDensity: 0.0005}),
	}
}

// portfolioProblem mirrors examples/portfolio: maximize expected return under
// a budget row and a second-order-cone risk cap ‖F·x‖ ≤ σ.
func portfolioProblem(t *testing.T) *Problem {
	t.Helper()
	p, err := NewConicProblem("portfolio",
		[]float64{0.12, 0.09, 0.05},
		[][]float64{
			{1, 1, 1},
			{0, 0, 0},
			{-0.20, -0.05, -0.01},
			{-0.04, -0.12, -0.02},
		},
		[]float64{1, 0.08, 0, 0},
		[]Cone{{Type: ConeNonNeg, Dim: 1}, {Type: ConeSOC, Dim: 3}})
	if err != nil {
		t.Fatalf("NewConicProblem: %v", err)
	}
	return p
}

// robustRegressionProblem mirrors examples/robustreg: minimize ‖y − X·β‖ via
// the epigraph variable t on the cone axis.
func robustRegressionProblem(t *testing.T) *Problem {
	t.Helper()
	u := []float64{0, 1, 2, 3}
	y := []float64{1.05, 1.52, 1.98, 2.55}
	rows := [][]float64{
		{0, 0, 1},
		{0, 0, -1},
	}
	b := []float64{10, 0}
	for i := range u {
		rows = append(rows, []float64{1, u[i], 0})
		b = append(b, y[i])
	}
	p, err := NewConicProblem("robust-regression", []float64{0, 0, -1}, rows, b,
		[]Cone{{Type: ConeNonNeg, Dim: 1}, {Type: ConeSOC, Dim: 1 + len(u)}})
	if err != nil {
		t.Fatalf("NewConicProblem: %v", err)
	}
	return p
}

// TestConicEngineSolvesSOCPWorkloads is the refactor's acceptance criterion:
// the conic engine solves both example SOCPs to StatusOptimal on the
// fault-injected fabric, agreeing with the software conic baseline, with the
// slack verifiably inside the cones.
func TestConicEngineSolvesSOCPWorkloads(t *testing.T) {
	for _, tc := range []struct {
		name string
		prob func(*testing.T) *Problem
		seed int64
	}{
		{"portfolio", portfolioProblem, 21},
		{"robust-regression", robustRegressionProblem, 11},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.prob(t)
			ref, err := Solve(p, EnginePDIP)
			if err != nil {
				t.Fatalf("software reference: %v", err)
			}
			if ref.Status != StatusOptimal {
				t.Fatalf("software reference status: %v", ref.Status)
			}

			solver, err := NewSolver(EngineConic, defaultFaultOpts(tc.seed)...)
			if err != nil {
				t.Fatalf("NewSolver: %v", err)
			}
			sol, err := solver.Solve(context.Background(), p)
			if err != nil {
				t.Fatalf("conic solve: %v", err)
			}
			if sol.Status != StatusOptimal {
				t.Fatalf("status = %v, want optimal (diagnostics %+v)", sol.Status, sol.Diagnostics)
			}
			if rel := math.Abs(sol.Objective-ref.Objective) / (1 + math.Abs(ref.Objective)); rel > 0.01 {
				t.Errorf("objective %v vs software %v (rel %v)", sol.Objective, ref.Objective, rel)
			}
			if sol.ConeInfeasibility > 1e-2 {
				t.Errorf("cone infeasibility %v", sol.ConeInfeasibility)
			}
			if sol.Hardware == nil {
				t.Error("conic engine returned no hardware estimate")
			}
		})
	}
}

// TestConicEngineLPDegenerateBitIdentical pins the core promise of the
// conic-form refactor at the public API: a pure LP solved by the conic
// engine — with or without an explicit all-orthant cone list — produces
// bit-identical iterates to the crossbar engine, trace records included
// (modulo the engine name stamp).
func TestConicEngineLPDegenerateBitIdentical(t *testing.T) {
	for _, tc := range propertyCases {
		base, err := GenerateFeasible(tc.m, 0, tc.seed)
		if err != nil {
			t.Fatalf("GenerateFeasible: %v", err)
		}
		tagged, err := NewConicProblem(base.Name(),
			base.inner.C, rowsOf(base), base.inner.B,
			[]Cone{{Type: ConeNonNeg, Dim: base.NumConstraints()}})
		if err != nil {
			t.Fatalf("NewConicProblem: %v", err)
		}

		solve := func(eng Engine, p *Problem) *Solution {
			s, err := NewSolver(eng, WithSeed(tc.seed), WithTrace(0))
			if err != nil {
				t.Fatalf("NewSolver(%v): %v", eng, err)
			}
			sol, err := s.Solve(context.Background(), p)
			if err != nil {
				t.Fatalf("%v solve: %v", eng, err)
			}
			return sol
		}
		lpSol := solve(EngineCrossbar, base)
		for name, sol := range map[string]*Solution{
			"conic nil-cones":      solve(EngineConic, base),
			"conic explicit-cones": solve(EngineConic, tagged),
		} {
			if sol.Status != lpSol.Status || sol.Iterations != lpSol.Iterations {
				t.Fatalf("m=%d %s: trajectory diverges: %v/%d vs %v/%d", tc.m, name,
					sol.Status, sol.Iterations, lpSol.Status, lpSol.Iterations)
			}
			for i := range lpSol.X {
				if sol.X[i] != lpSol.X[i] {
					t.Fatalf("m=%d %s: x[%d] differs bitwise: %v vs %v",
						tc.m, name, i, sol.X[i], lpSol.X[i])
				}
			}
			a, b := lpSol.Trace(), sol.Trace()
			if len(a) != len(b) {
				t.Fatalf("m=%d %s: trace lengths differ: %d vs %d", tc.m, name, len(a), len(b))
			}
			for i := range a {
				ra, rb := a[i], b[i]
				ra.Engine, rb.Engine = "", ""
				if ra != rb {
					t.Fatalf("m=%d %s: trace[%d] differs:\n%+v\n%+v", tc.m, name, i, a[i], b[i])
				}
			}
		}
	}
}

// rowsOf converts a problem's constraint matrix back to row-major form.
func rowsOf(p *Problem) [][]float64 {
	m, n := p.NumConstraints(), p.NumVariables()
	rows := make([][]float64, m)
	for i := 0; i < m; i++ {
		rows[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			rows[i][j] = p.inner.A.At(i, j)
		}
	}
	return rows
}

// TestConicRejectedByLPOnlyEngines pins the rejection surface: every engine
// without a conic path refuses SOC blocks with ErrConicUnsupported (which
// matches ErrInvalid), rather than mis-solving them as an LP.
func TestConicRejectedByLPOnlyEngines(t *testing.T) {
	p := portfolioProblem(t)
	for _, eng := range []Engine{EngineCrossbar, EngineCrossbarLargeScale, EngineSimplex} {
		_, err := Solve(p, eng)
		if !errors.Is(err, ErrConicUnsupported) {
			t.Errorf("%v: err = %v, want ErrConicUnsupported", eng, err)
		}
		if !errors.Is(err, ErrInvalid) {
			t.Errorf("%v: ErrConicUnsupported does not match ErrInvalid", eng)
		}
	}
	// The batch pool is LP-only regardless of engine.
	s, err := NewSolver(EngineCrossbar)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SolveBatch(context.Background(), []*Problem{p}); !errors.Is(err, ErrConicUnsupported) {
		t.Errorf("SolveBatch: err = %v, want ErrConicUnsupported", err)
	}
	// The software PDIP baselines accept conic problems.
	for _, eng := range []Engine{EnginePDIP, EnginePDIPReduced} {
		sol, err := Solve(p, eng)
		if err != nil {
			t.Errorf("%v: %v", eng, err)
			continue
		}
		if sol.Status != StatusOptimal {
			t.Errorf("%v: status = %v, want optimal", eng, sol.Status)
		}
	}
}

// TestGenerateFeasibleSOCPPublic checks the public generator end to end:
// reproducible per seed, conic by construction, solvable by the conic engine.
func TestGenerateFeasibleSOCPPublic(t *testing.T) {
	p1, err := GenerateFeasibleSOCP(12, 0, 2, 3, 5)
	if err != nil {
		t.Fatalf("GenerateFeasibleSOCP: %v", err)
	}
	p2, err := GenerateFeasibleSOCP(12, 0, 2, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !p1.IsConic() {
		t.Fatal("generated SOCP is not conic")
	}
	for i, k := range p1.Cones() {
		if k != p2.Cones()[i] {
			t.Fatalf("cone partition not reproducible: %+v vs %+v", p1.Cones(), p2.Cones())
		}
	}
	sol, err := Solve(p1, EngineConic, WithSeed(5))
	if err != nil {
		t.Fatalf("conic solve: %v", err)
	}
	if sol.Status != StatusOptimal {
		t.Errorf("status = %v, want optimal", sol.Status)
	}
}
