package memlp

// Public-layer determinism pin for the tiled PDHG engine (DESIGN.md D18):
// the worker grid set by WithTiles is pure execution parallelism, so under
// the full stochastic hardware stack — programmed variation, cycle-to-cycle
// read noise, and the default fault model — grids 1×1, 2×2, and 4×4 must
// return bit-identical Solutions and bit-identical traces. The noise draws
// are keyed to canonical (block, slot) noise epochs, never to which worker
// goroutine touched the tile; this test (run under -race in CI alongside
// the golden traces) is the contract's enforcement point.

import (
	"math"
	"testing"

	"github.com/memlp/memlp/internal/trace"
)

func TestTracePDHGGridDeterminism(t *testing.T) {
	p := feasibleLP(t, 12, 31)
	solveWith := func(tiles int) *Solution {
		t.Helper()
		sol, err := Solve(p, EnginePDHG,
			WithSeed(9),
			WithVariation(0.05),
			WithCycleNoise(0.25),
			WithFaultModel(FaultModel{StuckOnDensity: 0.002, StuckOffDensity: 0.002}),
			WithNoC("mesh", 4),
			WithTiles(tiles),
			WithMaxIterations(600), // variation biases the fixed point; pin the trajectory
			WithTrace(0))
		if err != nil {
			t.Fatalf("tiles=%d: %v", tiles, err)
		}
		return sol
	}

	ref := solveWith(1)
	if len(ref.Trace()) == 0 {
		t.Fatal("reference run recorded no trace")
	}
	for _, tiles := range []int{2, 4} {
		sol := solveWith(tiles)
		if sol.Status != ref.Status || sol.Iterations != ref.Iterations {
			t.Errorf("tiles=%d: (status, iterations) = (%v, %d), want (%v, %d)",
				tiles, sol.Status, sol.Iterations, ref.Status, ref.Iterations)
		}
		if math.Float64bits(sol.Objective) != math.Float64bits(ref.Objective) {
			t.Errorf("tiles=%d: objective %v, want bit-identical %v", tiles, sol.Objective, ref.Objective)
		}
		if len(sol.X) != len(ref.X) || len(sol.DualY) != len(ref.DualY) {
			t.Fatalf("tiles=%d: solution shape (%d, %d), want (%d, %d)",
				tiles, len(sol.X), len(sol.DualY), len(ref.X), len(ref.DualY))
		}
		for j := range ref.X {
			if math.Float64bits(sol.X[j]) != math.Float64bits(ref.X[j]) {
				t.Fatalf("tiles=%d: X[%d] = %v, want bit-identical %v", tiles, j, sol.X[j], ref.X[j])
			}
		}
		for j := range ref.DualY {
			if math.Float64bits(sol.DualY[j]) != math.Float64bits(ref.DualY[j]) {
				t.Fatalf("tiles=%d: DualY[%d] = %v, want bit-identical %v", tiles, j, sol.DualY[j], ref.DualY[j])
			}
		}
		if ref.Hardware == nil || sol.Hardware == nil {
			t.Fatalf("tiles=%d: missing hardware estimate", tiles)
		}
		if math.Float64bits(sol.Hardware.EnergyJoules) != math.Float64bits(ref.Hardware.EnergyJoules) {
			t.Errorf("tiles=%d: energy %v, want bit-identical %v",
				tiles, sol.Hardware.EnergyJoules, ref.Hardware.EnergyJoules)
		}
		if sol.Hardware.Latency != ref.Hardware.Latency {
			t.Errorf("tiles=%d: latency %v, want %v", tiles, sol.Hardware.Latency, ref.Hardware.Latency)
		}
		got := make([]trace.Record, len(sol.Trace()))
		for i, r := range sol.Trace() {
			got[i] = trace.Record(r)
		}
		want := make([]trace.Record, len(ref.Trace()))
		for i, r := range ref.Trace() {
			want[i] = trace.Record(r)
		}
		if diff := trace.Diff(got, want, 0); len(diff) != 0 {
			t.Errorf("tiles=%d: trace diverged from tiles=1:\n  %s", tiles, diff[0])
		}
	}
}
