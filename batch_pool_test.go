package memlp

// Tests for the sharded fabric pool behind Solver.SolveBatch: the
// WithParallelism option, the bit-identical-across-widths determinism
// contract, the BatchStats roll-up, and the pooled cancellation shape.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// poolBatch builds k instances sharing one Problem's constraint matrix with
// varying right-hand sides.
func poolBatch(t testing.TB, k, m int, seed int64) []*Problem {
	t.Helper()
	base, err := GenerateFeasible(m, 0, seed)
	if err != nil {
		t.Fatalf("GenerateFeasible: %v", err)
	}
	out := make([]*Problem, k)
	for i := range out {
		p := *base
		inner := *p.inner
		b := inner.B.Clone()
		for j := range b {
			b[j] *= 1 + 0.02*float64(i)
		}
		inner.B = b
		p.inner = &inner
		out[i] = &p
	}
	return out
}

// TestWithParallelismValidation covers the option's own range check.
func TestWithParallelismValidation(t *testing.T) {
	if _, err := NewSolver(EngineCrossbar, WithParallelism(-1)); !errors.Is(err, ErrInvalid) {
		t.Errorf("negative parallelism: err = %v, want ErrInvalid", err)
	}
	if _, err := NewSolver(EngineCrossbar, WithParallelism(0)); err != nil {
		t.Errorf("zero (auto) parallelism: %v", err)
	}
}

// TestSolveBatchBitIdenticalAcrossWidths pins the public determinism
// contract under full stochastic hardware: variation, cycle noise, and a
// fixed seed must yield bit-identical Solutions for every pool width.
func TestSolveBatchBitIdenticalAcrossWidths(t *testing.T) {
	problems := poolBatch(t, 8, 10, 21)
	ctx := context.Background()
	var ref []*Solution
	for _, par := range []int{1, 2, 8} {
		s, err := NewSolver(EngineCrossbar,
			WithParallelism(par), WithVariation(0.08), WithCycleNoise(0.5), WithSeed(13))
		if err != nil {
			t.Fatalf("NewSolver(par=%d): %v", par, err)
		}
		sols, err := s.SolveBatch(ctx, problems)
		if err != nil {
			t.Fatalf("SolveBatch(par=%d): %v", par, err)
		}
		if ref == nil {
			ref = sols
			continue
		}
		for i, sol := range sols {
			want := ref[i]
			if sol.Status != want.Status {
				t.Errorf("par=%d problem %d: status %v, want %v", par, i, sol.Status, want.Status)
			}
			if sol.Objective != want.Objective {
				t.Errorf("par=%d problem %d: objective %v, want bit-identical %v", par, i, sol.Objective, want.Objective)
			}
			if sol.Iterations != want.Iterations {
				t.Errorf("par=%d problem %d: iterations %d, want %d", par, i, sol.Iterations, want.Iterations)
			}
			for j := range want.X {
				if sol.X[j] != want.X[j] {
					t.Fatalf("par=%d problem %d: X[%d] = %v, want bit-identical %v", par, i, j, sol.X[j], want.X[j])
				}
			}
			for j := range want.DualY {
				if sol.DualY[j] != want.DualY[j] {
					t.Fatalf("par=%d problem %d: DualY[%d] = %v, want bit-identical %v", par, i, j, sol.DualY[j], want.DualY[j])
				}
			}
		}
	}
}

// TestSolveBatchStats checks the public BatchStats surface.
func TestSolveBatchStats(t *testing.T) {
	problems := poolBatch(t, 6, 8, 3)
	s, err := NewSolver(EngineCrossbar, WithParallelism(2), WithSeed(5))
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	sols, err := s.SolveBatch(context.Background(), problems)
	if err != nil {
		t.Fatalf("SolveBatch: %v", err)
	}
	stats := sols[0].Batch
	if stats == nil {
		t.Fatal("first Solution has no BatchStats")
	}
	if stats.Replicas != 2 {
		t.Errorf("Replicas = %d, want 2", stats.Replicas)
	}
	total := 0
	for _, n := range stats.ShardSolves {
		total += n
	}
	if total != len(problems) {
		t.Errorf("ShardSolves sums to %d, want %d", total, len(problems))
	}
	for i, sol := range sols[1:] {
		if sol.Batch != nil {
			t.Errorf("Solution %d carries BatchStats; only the first should", i+1)
		}
	}
}

// TestSolveBatchPooledPartialResultsOnCancel is the pooled version of the
// serial cancellation regression: with an explicit pool width > 1, the
// Solutions completed before the interruption come back in input order with
// the first interrupted solve's StatusCanceled partial as the last element.
func TestSolveBatchPooledPartialResultsOnCancel(t *testing.T) {
	problems := poolBatch(t, 200, 20, 9)
	s, err := NewSolver(EngineCrossbar, WithParallelism(4))
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	sols, err := s.SolveBatch(ctx, problems)
	if err == nil {
		t.Skip("batch completed before cancellation could land")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(sols) == 0 {
		t.Fatal("no partial results returned with the cancellation error")
	}
	if len(sols) == len(problems) {
		t.Fatal("all solutions returned despite cancellation error")
	}
	for i, sol := range sols[:len(sols)-1] {
		if sol.Status != StatusOptimal {
			t.Errorf("completed solution %d: status %v, want %v", i, sol.Status, StatusOptimal)
		}
	}
	last := sols[len(sols)-1]
	if last.Status != StatusCanceled {
		t.Errorf("last partial status = %v, want %v", last.Status, StatusCanceled)
	}
}

// TestSolveBatchConcurrentPooled hammers one pooled handle from several
// goroutines; under -race this pins that the pool's dispatcher, workers, and
// per-shard counters stay behind the handle's lock. Without variation the
// results must also all agree.
func TestSolveBatchConcurrentPooled(t *testing.T) {
	problems := poolBatch(t, 8, 8, 7)
	s, err := NewSolver(EngineCrossbar, WithParallelism(4))
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}
	ctx := context.Background()
	ref, err := s.SolveBatch(ctx, problems)
	if err != nil {
		t.Fatalf("reference batch: %v", err)
	}

	const goroutines, repeats = 6, 3
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*repeats)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < repeats; i++ {
				sols, err := s.SolveBatch(ctx, problems)
				if err != nil {
					errs <- err
					return
				}
				for k, sol := range sols {
					if sol.Objective != ref[k].Objective {
						errs <- errors.New("pooled batch objective drifted across concurrent calls")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
