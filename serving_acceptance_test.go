package memlp_test

// Acceptance test for the serving path: mirrors examples/serving — the
// streaming topology served over HTTP with concurrent same-matrix epochs —
// and holds it to the library's answers. External test package: the serving
// layer imports memlp, so an in-package test would be an import cycle.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/memlp/memlp"
	"github.com/memlp/memlp/internal/serve"
)

// servingEpochs is examples/serving's capacity stream over its fixed
// 3-path, 5-link topology.
var servingEpochs = [][]float64{
	{10, 7, 4, 8, 9},
	{12, 7, 4, 8, 9},
	{12, 5, 4, 8, 9},
	{12, 5, 2, 8, 11},
	{6, 5, 2, 8, 11},
}

func servingEpochText(i int, caps []float64) string {
	return fmt.Sprintf(
		"name epoch-%d\nmaximize 1 1 1\n"+
			"subject 1 0 1 <= %g\nsubject 0 1 0 <= %g\nsubject 0 0 1 <= %g\n"+
			"subject 1 0 0 <= %g\nsubject 0 1 1 <= %g\n",
		i, caps[0], caps[1], caps[2], caps[3], caps[4])
}

func TestServingExampleAcceptance(t *testing.T) {
	srv := serve.New(serve.Config{CoalesceWindow: 200 * time.Millisecond})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Exact per-epoch optima from the simplex engine, solved in-process.
	exact := make([]float64, len(servingEpochs))
	for i, caps := range servingEpochs {
		p, err := memlp.ReadProblem(bytes.NewReader([]byte(servingEpochText(i, caps))))
		if err != nil {
			t.Fatalf("epoch %d: %v", i, err)
		}
		sol, err := memlp.Solve(p, memlp.EngineSimplex)
		if err != nil || sol.Status != memlp.StatusOptimal {
			t.Fatalf("epoch %d: simplex %v %v", i, sol, err)
		}
		exact[i] = sol.Objective
	}

	// The example's request stream, fired concurrently so the server
	// coalesces all epochs into one fabric batch.
	results := make([]serve.Response, len(servingEpochs))
	var wg sync.WaitGroup
	for i, caps := range servingEpochs {
		body, err := json.Marshal(serve.Request{
			Problem: servingEpochText(i, caps),
			Engine:  "crossbar",
			Options: serve.Options{Variation: 0.05, Seed: 7},
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, body []byte) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("epoch %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("epoch %d: HTTP %d", i, resp.StatusCode)
				return
			}
			if err := json.NewDecoder(resp.Body).Decode(&results[i]); err != nil {
				t.Errorf("epoch %d: decode: %v", i, err)
			}
		}(i, body)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for i, r := range results {
		if r.Status != memlp.StatusOptimal.String() {
			t.Errorf("epoch %d: status %q, want optimal (%s)", i, r.Status, r.Error)
			continue
		}
		if !r.Coalesced || r.BatchSize != len(servingEpochs) {
			t.Errorf("epoch %d: coalesced=%v batch=%d, want a batch of %d",
				i, r.Coalesced, r.BatchSize, len(servingEpochs))
		}
		if rel := math.Abs(float64(r.Objective)-exact[i]) / (1 + math.Abs(exact[i])); rel > 0.08 {
			t.Errorf("epoch %d: objective %v vs simplex %v (rel %v)", i, r.Objective, exact[i], rel)
		}
		if r.Hardware == nil || r.Hardware.CellWrites == 0 {
			t.Errorf("epoch %d: missing hardware estimate: %+v", i, r.Hardware)
		}
	}
}
