package memlp

// Cross-engine property suite: every engine — analog or software — must
// agree on the optimum of randomly generated feasible instances, and the
// crossbar engines must keep that promise even when their simulated arrays
// contain stuck cells. This is the acceptance test for the fault-injection
// and recovery subsystem: at ~1% stuck-cell density every answer is either
// a verified in-fabric optimum or an explicitly StatusDegraded software
// fallback with populated Diagnostics — never a panic, never a silently
// wrong objective.

import (
	"context"
	"math"
	"testing"
)

// propertyCases enumerates the random instances the suite sweeps. Sizes mix
// square-ish and paper-ratio (n = m/3) shapes.
var propertyCases = []struct {
	m    int
	seed int64
}{
	{6, 11},
	{9, 23},
	{12, 37},
	{15, 41},
	{21, 53},
}

// softwareReference solves p with the reduced-KKT PDIP baseline and demands
// optimality.
func softwareReference(t *testing.T, p *Problem) float64 {
	t.Helper()
	ref, err := Solve(p, EnginePDIPReduced)
	if err != nil {
		t.Fatalf("reference solve: %v", err)
	}
	if ref.Status != StatusOptimal {
		t.Fatalf("reference status: %v", ref.Status)
	}
	return ref.Objective
}

// TestPropertyEnginesAgree checks that every engine — the three Newton-style
// analog engines, the first-order tiled PDHG engine, and the software
// baselines — reports StatusOptimal with matching objectives on clean
// (fault-free) hardware.
func TestPropertyEnginesAgree(t *testing.T) {
	for _, tc := range propertyCases {
		p, err := GenerateFeasible(tc.m, 0, tc.seed)
		if err != nil {
			t.Fatalf("GenerateFeasible(%d, %d): %v", tc.m, tc.seed, err)
		}
		ref := softwareReference(t, p)
		for _, eng := range []Engine{EngineCrossbar, EngineCrossbarLargeScale, EnginePDHG, EnginePDIP, EnginePDIPReduced, EngineSimplex} {
			var opts []Option
			tol := 1e-3
			if eng == EngineCrossbar || eng == EngineCrossbarLargeScale || eng == EnginePDHG {
				opts = append(opts, WithSeed(tc.seed))
				tol = 0.08 // analog accuracy floor
			}
			sol, err := Solve(p, eng, opts...)
			if err != nil {
				t.Errorf("m=%d seed=%d %v: %v", tc.m, tc.seed, eng, err)
				continue
			}
			if sol.Status != StatusOptimal {
				t.Errorf("m=%d seed=%d %v: status %v", tc.m, tc.seed, eng, sol.Status)
				continue
			}
			if rel := math.Abs(sol.Objective-ref) / (1 + math.Abs(ref)); rel > tol {
				t.Errorf("m=%d seed=%d %v: objective %v vs reference %v (rel %v > %v)",
					tc.m, tc.seed, eng, sol.Objective, ref, rel, tol)
			}
		}
	}
}

// TestPropertyPDHGPastSingleFabricCeiling pins the scaling property the
// tiled PDHG engine exists for: an instance whose constraint matrix exceeds
// one tile-sized crossbar array — which every single-fabric engine
// configured at that array size must reject — still solves to a verified
// optimum on the PDHG engine, because PDHG only ever needs one block per
// array and stitches the blocks over the NoC.
func TestPropertyPDHGPastSingleFabricCeiling(t *testing.T) {
	const tile = 8
	p, err := GenerateFeasible(24, 18, 71) // 24x18 matrix: a 3x3 block grid of 8-wide tiles
	if err != nil {
		t.Fatalf("GenerateFeasible: %v", err)
	}
	ref := softwareReference(t, p)

	// The physical premise — a single 8-wide crossbar array rejects this
	// matrix with crossbar.ErrTooLarge — is pinned at the fabric layer in
	// internal/pdhg's TestSolvesPastSingleCrossbarCeiling; the public engines
	// auto-size their arrays, so the public-layer property is that the tiled
	// engine solves it while confined to 8-wide tiles.
	sol, err := Solve(p, EnginePDHG,
		WithSeed(71),
		WithNoC("mesh", tile),
		WithTiles(2))
	if err != nil {
		t.Fatalf("pdhg solve: %v", err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("pdhg status %v, want optimal past the single-array ceiling", sol.Status)
	}
	if rel := math.Abs(sol.Objective-ref) / (1 + math.Abs(ref)); rel > 0.08 {
		t.Errorf("pdhg objective %v vs reference %v (rel %v)", sol.Objective, ref, rel)
	}
	if sol.Hardware == nil || sol.Hardware.EnergyJoules <= 0 {
		t.Error("tiled solve reported no hardware cost estimate")
	}
	// Digital duality-gap cross-check: recompute the gap from the returned
	// primal/dual pair with exact arithmetic; the engine's claimed optimum
	// must be consistent with its own certificate.
	if sol.DualityGap > 0.05*(1+math.Abs(sol.Objective)) {
		t.Errorf("claimed optimal with duality gap %v", sol.DualityGap)
	}
}

// TestPropertyFaultRecovery is the headline acceptance property: with ~1%
// stuck cells seeded into the arrays, both crossbar engines must return
// either StatusOptimal (the ladder recovered in-fabric) or StatusDegraded
// (explicit software fallback) on every instance — with Diagnostics
// populated and the objective still matching the software reference.
func TestPropertyFaultRecovery(t *testing.T) {
	fm := FaultModel{StuckOnDensity: 0.005, StuckOffDensity: 0.005}
	for _, tc := range propertyCases {
		p, err := GenerateFeasible(tc.m, 0, tc.seed)
		if err != nil {
			t.Fatalf("GenerateFeasible(%d, %d): %v", tc.m, tc.seed, err)
		}
		ref := softwareReference(t, p)
		for _, eng := range []Engine{EngineCrossbar, EngineCrossbarLargeScale} {
			sol, err := Solve(p, eng,
				WithSeed(tc.seed),
				WithFaultModel(fm),
				WithWriteVerify(3, 0.01))
			if err != nil {
				t.Errorf("m=%d seed=%d %v: %v", tc.m, tc.seed, eng, err)
				continue
			}
			if sol.Status != StatusOptimal && sol.Status != StatusDegraded {
				t.Errorf("m=%d seed=%d %v: status %v, want optimal or degraded",
					tc.m, tc.seed, eng, sol.Status)
				continue
			}
			d := sol.Diagnostics
			if d == nil {
				t.Errorf("m=%d seed=%d %v: Diagnostics nil under fault model", tc.m, tc.seed, eng)
				continue
			}
			if d.Attempts < 1 {
				t.Errorf("m=%d seed=%d %v: Attempts = %d", tc.m, tc.seed, eng, d.Attempts)
			}
			if sol.Status == StatusDegraded {
				if !d.SoftwareFallback || d.RecoveredBy != "software" {
					t.Errorf("m=%d seed=%d %v: degraded but diagnostics say %+v", tc.m, tc.seed, eng, d)
				}
			} else if d.SoftwareFallback {
				t.Errorf("m=%d seed=%d %v: optimal but SoftwareFallback set", tc.m, tc.seed, eng)
			}
			// Degraded answers come from software and must be near-exact;
			// in-fabric optima get the analog floor. Either way: no silent
			// wrong answers.
			tol := 0.08
			if sol.Status == StatusDegraded {
				tol = 1e-3
			}
			if rel := math.Abs(sol.Objective-ref) / (1 + math.Abs(ref)); rel > tol {
				t.Errorf("m=%d seed=%d %v: status %v objective %v vs reference %v (rel %v > %v)",
					tc.m, tc.seed, eng, sol.Status, sol.Objective, ref, rel, tol)
			}
		}
	}
}

// TestPropertyHeavyFaultsNeverLie pushes the density to 10%, where in-fabric
// recovery is unlikely: the contract weakens to "any status is acceptable
// except a wrong StatusOptimal/StatusDegraded objective, and never a panic".
func TestPropertyHeavyFaultsNeverLie(t *testing.T) {
	fm := FaultModel{StuckOnDensity: 0.05, StuckOffDensity: 0.05}
	for _, tc := range propertyCases[:3] {
		p, err := GenerateFeasible(tc.m, 0, tc.seed)
		if err != nil {
			t.Fatalf("GenerateFeasible: %v", err)
		}
		ref := softwareReference(t, p)
		for _, eng := range []Engine{EngineCrossbar, EngineCrossbarLargeScale} {
			s, err := NewSolver(eng, WithSeed(tc.seed), WithFaultModel(fm), WithWriteVerify(2, 0.01))
			if err != nil {
				t.Fatalf("NewSolver: %v", err)
			}
			sol, err := s.Solve(context.Background(), p)
			if err != nil {
				continue // a hard error is an honest non-answer
			}
			switch sol.Status {
			case StatusOptimal, StatusDegraded:
				tol := 0.08
				if sol.Status == StatusDegraded {
					tol = 1e-3
				}
				if rel := math.Abs(sol.Objective-ref) / (1 + math.Abs(ref)); rel > tol {
					t.Errorf("m=%d %v: claimed %v with objective %v vs reference %v (rel %v)",
						tc.m, eng, sol.Status, sol.Objective, ref, rel)
				}
			}
		}
	}
}
